"""Color handling: diverging/sequential colormaps and region palettes.

The paper encodes SOS-times with a cold-to-hot scale: "Blue—cold—colors
indicate short durations, whereas red—hot—colors indicate long
durations" (Section VI).  :data:`COLD_HOT` implements exactly that; the
other maps serve counter charts and profiles.  All mapping is
vectorised: value arrays map to ``(..., 3)`` uint8 RGB arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Colormap",
    "COLD_HOT",
    "HEAT",
    "GRAYS",
    "VIRIDIS_LIKE",
    "region_palette",
    "NAN_COLOR",
    "BACKGROUND",
    "hex_color",
]

#: Canvas background (near-white, so hot colors pop).
BACKGROUND = (252, 252, 250)
#: Cells without data (no segment covering the bin).
NAN_COLOR = (225, 225, 222)


def hex_color(rgb: tuple[int, int, int]) -> str:
    """``(r, g, b)`` → ``#rrggbb`` for the SVG backend."""
    return "#{:02x}{:02x}{:02x}".format(*rgb)


@dataclass(frozen=True)
class Colormap:
    """Piecewise-linear colormap over [0, 1].

    ``stops`` are (position, (r, g, b)) control points with positions
    strictly increasing from 0.0 to 1.0.
    """

    name: str
    stops: tuple[tuple[float, tuple[int, int, int]], ...]

    def __post_init__(self) -> None:
        pos = [p for p, _ in self.stops]
        if len(pos) < 2 or pos[0] != 0.0 or pos[-1] != 1.0:
            raise ValueError("stops must span 0.0 .. 1.0")
        if any(b <= a for a, b in zip(pos, pos[1:])):
            raise ValueError("stop positions must be strictly increasing")

    def __call__(
        self, values: np.ndarray, vmin: float = 0.0, vmax: float = 1.0
    ) -> np.ndarray:
        """Map values to RGB; NaNs map to :data:`NAN_COLOR`.

        Returns an array of shape ``values.shape + (3,)``, dtype uint8.
        """
        v = np.asarray(values, dtype=np.float64)
        nan_mask = ~np.isfinite(v)
        span = vmax - vmin
        if span <= 0:
            t = np.zeros_like(v)
        else:
            t = np.clip((v - vmin) / span, 0.0, 1.0)
        t = np.where(nan_mask, 0.0, t)

        positions = np.asarray([p for p, _ in self.stops])
        channels = np.asarray([c for _, c in self.stops], dtype=np.float64)
        idx = np.clip(np.searchsorted(positions, t, side="right") - 1, 0,
                      len(positions) - 2)
        p0 = positions[idx]
        p1 = positions[idx + 1]
        frac = np.where(p1 > p0, (t - p0) / (p1 - p0), 0.0)
        rgb = channels[idx] + frac[..., None] * (channels[idx + 1] - channels[idx])
        out = np.clip(np.round(rgb), 0, 255).astype(np.uint8)
        out[nan_mask] = np.asarray(NAN_COLOR, dtype=np.uint8)
        return out

    def sample(self, n: int = 256) -> np.ndarray:
        """``n`` evenly spaced colors (for colorbars)."""
        return self(np.linspace(0.0, 1.0, n))


#: The paper's SOS scale: blue (cold, short) → red (hot, long).
COLD_HOT = Colormap(
    "cold-hot",
    (
        (0.00, (24, 66, 161)),
        (0.25, (64, 140, 230)),
        (0.50, (235, 235, 235)),
        (0.75, (244, 121, 66)),
        (1.00, (176, 15, 15)),
    ),
)

#: Sequential white→yellow→red map for counter rates.
HEAT = Colormap(
    "heat",
    (
        (0.00, (255, 252, 240)),
        (0.35, (254, 217, 118)),
        (0.70, (240, 101, 48)),
        (1.00, (150, 10, 20)),
    ),
)

GRAYS = Colormap(
    "grays",
    (
        (0.0, (245, 245, 245)),
        (1.0, (40, 40, 40)),
    ),
)

#: Perceptually-ordered dark-to-bright map (rough viridis imitation).
VIRIDIS_LIKE = Colormap(
    "viridis-like",
    (
        (0.00, (68, 1, 84)),
        (0.25, (59, 82, 139)),
        (0.50, (33, 145, 140)),
        (0.75, (94, 201, 98)),
        (1.00, (253, 231, 37)),
    ),
)

#: Distinct, Vampir-flavoured hues for timeline function colors.  MPI is
#: red by strong convention (the paper reads "red areas" as MPI time).
_CATEGORY_COLORS: tuple[tuple[int, int, int], ...] = (
    (86, 156, 87),  # green (application / COSMO in Fig 4)
    (131, 96, 177),  # purple (SPECS in Fig 4)
    (222, 184, 68),  # yellow (coupling in Fig 4)
    (90, 155, 213),  # blue
    (205, 130, 70),  # orange
    (111, 194, 188),  # teal
    (188, 109, 153),  # pink
    (140, 140, 92),  # olive
    (100, 110, 170),  # indigo
    (170, 120, 100),  # brown
)

#: The conventional color for MPI/synchronization regions.
MPI_RED = (196, 52, 43)


def region_palette(num_regions: int, mpi_mask=None) -> np.ndarray:
    """Color table for region ids, shape ``(num_regions, 3)`` uint8.

    ``mpi_mask`` (boolean per region id) pins MPI regions to the
    conventional red; other regions cycle through distinct hues.
    """
    palette = np.empty((max(num_regions, 1), 3), dtype=np.uint8)
    cycle = len(_CATEGORY_COLORS)
    j = 0
    for i in range(num_regions):
        if mpi_mask is not None and bool(mpi_mask[i]):
            palette[i] = MPI_RED
        else:
            palette[i] = _CATEGORY_COLORS[j % cycle]
            j += 1
    return palette
