"""Legends: vertical colorbars and region color keys."""

from __future__ import annotations

import numpy as np

from .canvas import Canvas
from .colors import Colormap, hex_color
from .figure import ChartLayout, nice_ticks
from .svg import SVGCanvas

__all__ = ["draw_colorbar", "draw_region_legend", "svg_colorbar"]


def draw_colorbar(
    canvas: Canvas,
    layout: ChartLayout,
    cmap: Colormap,
    vmin: float,
    vmax: float,
    label: str = "",
    width: int = 14,
) -> None:
    """Vertical colorbar in the right margin of a chart."""
    x = layout.plot_x + layout.plot_w + 18
    y = layout.plot_y
    h = layout.plot_h
    # Gradient strip (hot at the top).
    ramp = cmap(np.linspace(1.0, 0.0, h))  # (h, 3)
    strip = np.repeat(ramp[:, None, :], width, axis=1)
    canvas.blit(x, y, strip)
    canvas.rect(x, y, width, h, (120, 120, 120))
    # Tick labels.
    for tick in nice_ticks(vmin, vmax, target=5):
        frac = (tick - vmin) / (vmax - vmin) if vmax > vmin else 0.0
        ty = y + h - 1 - int(round(frac * (h - 1)))
        canvas.hline(x + width, x + width + 3, ty, (90, 90, 90))
        canvas.text(x + width + 5, ty - 3, f"{tick:.3g}")
    if label:
        canvas.text(x, max(y - 12, 2), label)


def svg_colorbar(
    svg: SVGCanvas,
    x: float,
    y: float,
    height: float,
    cmap: Colormap,
    vmin: float,
    vmax: float,
    label: str = "",
    width: float = 14.0,
    steps: int = 48,
) -> None:
    """Vertical colorbar drawn as stacked rects (vector backend)."""
    step_h = height / steps
    for i in range(steps):
        frac = 1.0 - (i + 0.5) / steps
        color = cmap(np.asarray([frac]))[0]
        svg.rect(x, y + i * step_h, width, step_h + 0.5, hex_color(tuple(color)))
    svg.rect(x, y, width, height, "none", stroke="#787878")
    for tick in nice_ticks(vmin, vmax, target=5):
        frac = (tick - vmin) / (vmax - vmin) if vmax > vmin else 0.0
        ty = y + height - frac * height
        svg.line(x + width, ty, x + width + 3, ty, stroke="#5a5a5a")
        svg.text(x + width + 5, ty + 3, f"{tick:.3g}", size=9)
    if label:
        svg.text(x, y - 6, label, size=10)


def draw_region_legend(
    canvas: Canvas,
    x: int,
    y: int,
    entries: list[tuple[str, tuple[int, int, int]]],
    swatch: int = 9,
    spacing: int = 13,
) -> None:
    """Color key listing region names (top-N by visible time)."""
    for i, (name, color) in enumerate(entries):
        yy = y + i * spacing
        canvas.fill_rect(x, yy, swatch, swatch, color)
        canvas.rect(x, yy, swatch, swatch, (110, 110, 110))
        canvas.text(x + swatch + 4, yy + 1, name[:20])
