"""Stacked area chart of activity shares over time.

The quantitative companion of the master timeline: renders
:class:`repro.core.activity.ActivityShares` as stacked filled bands, so
"MPI grows until it dominates" (Figure 4a) becomes a measurable curve.
"""

from __future__ import annotations

import os

import numpy as np

from .canvas import Canvas
from .colors import MPI_RED, _CATEGORY_COLORS
from .figure import ChartLayout, draw_time_axis, draw_title
from .legend import draw_region_legend
from .png import write_png

__all__ = ["render_area_png"]

_IDLE_COLOR = (226, 226, 222)


def _group_color(label: str, index: int) -> tuple[int, int, int]:
    if label == "MPI" or label.startswith("MPI_"):
        return MPI_RED
    if label == "idle":
        return _IDLE_COLOR
    return _CATEGORY_COLORS[index % len(_CATEGORY_COLORS)]


def render_area_png(
    shares,
    path: str | os.PathLike | None = None,
    title: str = "Activity shares over time",
    width: int = 1100,
    height: int = 320,
) -> Canvas:
    """Render stacked activity shares to a PNG chart.

    Parameters
    ----------
    shares:
        An :class:`repro.core.activity.ActivityShares`.
    """
    layout = ChartLayout(width=width, height=height, right=150)
    canvas = Canvas(width, height)
    draw_title(canvas, layout, title)

    matrix = np.asarray(shares.shares, dtype=np.float64)
    n_groups, bins = matrix.shape
    cum = np.cumsum(matrix, axis=0)
    cum = np.vstack([np.zeros(bins), cum])  # (groups + 1, bins)
    cum = np.clip(cum, 0.0, 1.0)

    colors = [
        _group_color(label, i) for i, label in enumerate(shares.labels)
    ]

    plot_x, plot_y = layout.plot_x, layout.plot_y
    plot_w, plot_h = layout.plot_w, layout.plot_h
    cols = np.minimum((np.arange(plot_w) * bins) // plot_w, bins - 1)
    # Pixel rows per group per column: stack from the bottom up.
    for px, col in enumerate(cols):
        x = plot_x + px
        for g in range(n_groups):
            y_lo = plot_y + plot_h - int(round(cum[g + 1, col] * plot_h))
            y_hi = plot_y + plot_h - int(round(cum[g, col] * plot_h))
            if y_hi > y_lo:
                canvas.vline(x, y_lo, y_hi - 1, colors[g])

    canvas.rect(plot_x - 1, plot_y - 1, plot_w + 2, plot_h + 2, (120, 120, 120))
    draw_time_axis(canvas, layout, float(shares.edges[0]), float(shares.edges[-1]))
    # y axis: 0..100%
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = plot_y + plot_h - int(round(frac * plot_h))
        canvas.hline(plot_x - 4, plot_x - 1, y, (90, 90, 90))
        canvas.text(plot_x - 6, y - 3, f"{int(100 * frac)}%", anchor="rt")

    entries = list(zip(shares.labels, colors))
    draw_region_legend(canvas, plot_x + plot_w + 18, plot_y, entries)

    if path is not None:
        write_png(canvas.pixels, path)
    return canvas
