"""Counter heat timelines (the Figure-6c view).

A thin specialisation of the heat renderer: rasterise a counter's
per-second rate per process over time and color-code it, so the
analyst can visually match counter anomalies against the SOS heat map.
"""

from __future__ import annotations

import os

from ..core.metrics import binned_metric_matrix
from ..trace.trace import Trace
from .colors import HEAT, Colormap
from .canvas import Canvas
from .heatmap import render_heat_png

__all__ = ["render_counter_png"]


def render_counter_png(
    trace: Trace,
    metric: int | str,
    path: str | os.PathLike | None = None,
    bins: int = 512,
    cmap: Colormap = HEAT,
    width: int = 1100,
    title: str | None = None,
) -> Canvas:
    """Render one counter as a rate heat map over (process, time)."""
    matrix, edges = binned_metric_matrix(trace, metric, bins=bins)
    if isinstance(metric, str):
        metric_def = trace.metrics[trace.metrics.id_of(metric)]
    else:
        metric_def = trace.metrics[int(metric)]
    if title is None:
        title = f"{metric_def.name} — {trace.name}"
    return render_heat_png(
        matrix,
        edges,
        path=path,
        title=title,
        cmap=cmap,
        width=width,
        ranks=trace.ranks,
        colorbar_label=f"{metric_def.unit}/s",
    )
