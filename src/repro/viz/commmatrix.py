"""Communication-matrix heat map (sender x receiver)."""

from __future__ import annotations

import os

import numpy as np

from .canvas import Canvas
from .colors import HEAT, Colormap
from .figure import ChartLayout, draw_title, rank_tick_rows
from .legend import draw_colorbar
from .png import write_png

__all__ = ["render_comm_matrix_png"]


def render_comm_matrix_png(
    comm,
    path: str | os.PathLike | None = None,
    metric: str = "bytes",
    cmap: Colormap = HEAT,
    width: int = 640,
    title: str | None = None,
) -> Canvas:
    """Render a :class:`repro.core.commstats.CommMatrix` heat map.

    ``metric`` selects ``"bytes"``, ``"count"`` or ``"time"`` (mean
    transfer time per message).
    """
    if metric == "bytes":
        matrix = comm.bytes.astype(np.float64)
        label = "bytes"
    elif metric == "count":
        matrix = comm.counts.astype(np.float64)
        label = "messages"
    elif metric == "time":
        matrix = comm.mean_transfer_time()
        label = "s/message"
    else:
        raise ValueError(f"unknown metric {metric!r}")
    matrix = np.where(matrix == 0, np.nan, matrix)

    n = len(comm.ranks)
    height = width  # square plot area keeps cells square-ish
    layout = ChartLayout(width=width, height=height, left=70, right=110,
                         top=34, bottom=46)
    canvas = Canvas(width, height)
    draw_title(canvas, layout, title or f"Communication matrix ({label})")

    finite = matrix[np.isfinite(matrix)]
    vmin = float(finite.min()) if len(finite) else 0.0
    vmax = float(finite.max()) if len(finite) else 1.0
    if vmax <= vmin:
        vmax = vmin + 1.0
    rgb = cmap(matrix, vmin, vmax)

    rows = np.minimum((np.arange(layout.plot_h) * n) // layout.plot_h, n - 1)
    cols = np.minimum((np.arange(layout.plot_w) * n) // layout.plot_w, n - 1)
    canvas.blit(layout.plot_x, layout.plot_y, rgb[np.ix_(rows, cols)])
    canvas.rect(layout.plot_x - 1, layout.plot_y - 1, layout.plot_w + 2,
                layout.plot_h + 2, (120, 120, 120))

    for row in rank_tick_rows(n, max_labels=12):
        y = layout.plot_y + int((row + 0.5) * layout.plot_h / n)
        canvas.text(layout.plot_x - 6, y - 3, str(comm.ranks[row]), anchor="rt")
        x = layout.plot_x + int((row + 0.5) * layout.plot_w / n)
        canvas.text(x, layout.plot_y + layout.plot_h + 6,
                    str(comm.ranks[row]), anchor="ct")
    canvas.text_rotated(8, layout.plot_y + layout.plot_h // 2, "sender")
    canvas.text(layout.plot_x + layout.plot_w // 2,
                layout.plot_y + layout.plot_h + 22, "receiver", anchor="ct")
    draw_colorbar(canvas, layout, cmap, vmin, vmax, label=label)

    if path is not None:
        write_png(canvas.pixels, path)
    return canvas
