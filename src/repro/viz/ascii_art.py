"""Terminal rendering: ANSI heat maps and unicode sparklines.

The CLI prints these so an analyst gets the paper's "follow the red"
guidance directly in the terminal, before opening any image file.
"""

from __future__ import annotations

import numpy as np

__all__ = ["heat_to_ansi", "sparkline", "matrix_sparklines"]

_BLOCKS = "▁▂▃▄▅▆▇█"

#: 256-color ANSI codes approximating the blue→red cold-hot ramp.
_ANSI_RAMP = (17, 18, 19, 20, 25, 31, 37, 66, 102, 138, 174, 210, 203, 196, 160, 124)


def heat_to_ansi(
    matrix: np.ndarray,
    max_width: int = 100,
    max_rows: int = 40,
    row_labels: list | None = None,
) -> str:
    """Render a value matrix as colored terminal blocks.

    NaN cells render as dots.  Large matrices are downsampled by
    striding (nearest neighbour) to at most ``max_rows x max_width``.
    """
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.size == 0:
        return "(empty)"
    n_rows, n_cols = m.shape
    rows = np.unique(np.minimum((np.arange(min(max_rows, n_rows)) * n_rows)
                                // min(max_rows, n_rows), n_rows - 1))
    cols = np.unique(np.minimum((np.arange(min(max_width, n_cols)) * n_cols)
                                // min(max_width, n_cols), n_cols - 1))
    sub = m[np.ix_(rows, cols)]
    finite = sub[np.isfinite(sub)]
    lo = float(finite.min()) if len(finite) else 0.0
    hi = float(finite.max()) if len(finite) else 1.0
    span = hi - lo if hi > lo else 1.0

    lines = []
    for i, row in enumerate(rows):
        cells = []
        for value in sub[i]:
            if not np.isfinite(value):
                cells.append("·")
                continue
            level = int((value - lo) / span * (len(_ANSI_RAMP) - 1))
            code = _ANSI_RAMP[level]
            cells.append(f"\x1b[48;5;{code}m \x1b[0m")
        label = str(row_labels[row]) if row_labels is not None else str(row)
        lines.append(f"{label:>6} {''.join(cells)}")
    lines.append(f"{'':6} min={lo:.4g}  max={hi:.4g}")
    return "\n".join(lines)


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """Unicode sparkline of a 1D series (NaNs render as spaces)."""
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        return ""
    if len(v) > width:
        idx = np.minimum((np.arange(width) * len(v)) // width, len(v) - 1)
        v = v[idx]
    finite = v[np.isfinite(v)]
    if len(finite) == 0:
        return " " * len(v)
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo if hi > lo else 1.0
    chars = []
    for value in v:
        if not np.isfinite(value):
            chars.append(" ")
        else:
            level = int((value - lo) / span * (len(_BLOCKS) - 1))
            chars.append(_BLOCKS[level])
    return "".join(chars)


def matrix_sparklines(
    matrix: np.ndarray, row_labels: list | None = None, max_rows: int = 20
) -> str:
    """One sparkline per matrix row (e.g. SOS over time per rank)."""
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.size == 0:
        return "(empty)"
    n = m.shape[0]
    step = max(1, int(np.ceil(n / max_rows)))
    lines = []
    for row in range(0, n, step):
        label = str(row_labels[row]) if row_labels is not None else str(row)
        lines.append(f"{label:>6} {sparkline(m[row])}")
    return "\n".join(lines)
