"""Vampir-like trace visualizer: timelines, heat maps, counter charts.

High-level entry point: :func:`render_analysis` writes the full set of
views for one analysis (master timeline, SOS heat map in PNG and SVG,
counter heat maps, flat profile) into a directory.
"""

from __future__ import annotations

import os
from pathlib import Path

from .areachart import render_area_png
from .ascii_art import heat_to_ansi, matrix_sparklines, sparkline
from .canvas import Canvas
from .commmatrix import render_comm_matrix_png
from .colors import (
    BACKGROUND,
    COLD_HOT,
    GRAYS,
    HEAT,
    NAN_COLOR,
    VIRIDIS_LIKE,
    Colormap,
    hex_color,
    region_palette,
)
from .counterchart import render_counter_png
from .figure import ChartLayout, format_seconds, nice_ticks
from .heatmap import heat_image, render_heat_png, render_sos_svg
from .png import encode_png, write_png
from .profilebar import render_profile_png
from .svg import SVGCanvas
from .timeline import match_messages, region_strip, render_timeline_png
from .timeline_svg import render_timeline_svg

__all__ = [
    "BACKGROUND",
    "COLD_HOT",
    "Canvas",
    "ChartLayout",
    "Colormap",
    "GRAYS",
    "HEAT",
    "NAN_COLOR",
    "SVGCanvas",
    "VIRIDIS_LIKE",
    "encode_png",
    "format_seconds",
    "heat_image",
    "heat_to_ansi",
    "hex_color",
    "match_messages",
    "matrix_sparklines",
    "nice_ticks",
    "region_palette",
    "region_strip",
    "render_analysis",
    "render_area_png",
    "render_comm_matrix_png",
    "render_counter_png",
    "render_heat_png",
    "render_profile_png",
    "render_sos_svg",
    "render_timeline_png",
    "render_timeline_svg",
    "sparkline",
    "write_png",
]


def render_analysis(
    analysis,
    outdir: str | os.PathLike,
    bins: int = 512,
    width: int = 1100,
    counters: bool = True,
    show_messages: bool = False,
) -> dict[str, str]:
    """Write all standard views of a variation analysis to ``outdir``.

    Produces ``timeline.png``, ``sos_heatmap.png``, ``sos_heatmap.svg``,
    ``duration_heatmap.png``, ``profile.png`` and one
    ``counter_<name>.png`` per recorded metric.  Returns a mapping of
    view name → file path.
    """
    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    trace = analysis.trace
    written: dict[str, str] = {}

    path = out / "timeline.png"
    render_timeline_png(
        trace,
        path,
        width=width,
        tables=analysis.profile.tables,
        show_messages=show_messages,
    )
    written["timeline"] = str(path)

    matrix, edges = analysis.heat_matrix(bins=bins)
    path = out / "sos_heatmap.png"
    render_heat_png(
        matrix,
        edges,
        path,
        title=f"SOS-time of {analysis.dominant_name!r} — {trace.name}",
        width=width,
        ranks=trace.ranks,
    )
    written["sos_heatmap"] = str(path)

    path = out / "sos_heatmap.svg"
    render_sos_svg(analysis, path, width=float(width))
    written["sos_heatmap_svg"] = str(path)

    path = out / "timeline.svg"
    render_timeline_svg(
        trace, path, width=float(width), tables=analysis.profile.tables,
        show_messages=show_messages,
    )
    written["timeline_svg"] = str(path)

    from ..core.variation import binned_matrix

    dur_matrix, dur_edges = binned_matrix(analysis.sos, bins=bins)
    # Plain durations (the view SOS improves upon) for comparison.
    from .heatmap import render_heat_png as _render

    path = out / "duration_heatmap.png"
    seg = analysis.segmentation
    import numpy as np

    # Rebin plain durations with the same helper by temporarily viewing
    # the duration matrix through the segmentation.
    from ..core.sos import RankSOS, SOSResult

    plain = SOSResult(
        seg,
        {
            r: RankSOS(
                rank=r,
                duration=analysis.sos[r].duration,
                sync_time=np.zeros_like(analysis.sos[r].duration),
                sos=analysis.sos[r].duration,
            )
            for r in analysis.sos.ranks
        },
        analysis.sos.classifier,
    )
    pm, pe = binned_matrix(plain, bins=bins)
    _render(
        pm,
        pe,
        path,
        title=f"Plain segment durations — {trace.name}",
        width=width,
        ranks=trace.ranks,
    )
    written["duration_heatmap"] = str(path)

    path = out / "profile.png"
    render_profile_png(
        analysis.profile.stats, path, title=f"Flat profile — {trace.name}"
    )
    written["profile"] = str(path)

    from ..core.activity import activity_shares

    path = out / "activity.png"
    shares = activity_shares(
        trace, analysis.profile.tables, bins=min(bins, 256)
    )
    render_area_png(
        shares, path, title=f"Activity shares — {trace.name}", width=width
    )
    written["activity"] = str(path)

    if counters:
        for metric in trace.metrics:
            path = out / f"counter_{metric.name}.png"
            render_counter_png(trace, metric.id, path, bins=bins, width=width)
            written[f"counter_{metric.name}"] = str(path)
    return written
