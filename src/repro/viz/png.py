"""Minimal PNG encoder (truecolor, 8-bit, zlib via the stdlib).

matplotlib is deliberately not a dependency — the trace visualizer is
one of the substrates this reproduction builds itself.  PNG is simple
enough to emit directly: signature, IHDR, one zlib-compressed IDAT
with filter type 0 per scanline, IEND.
"""

from __future__ import annotations

import os
import struct
import zlib

import numpy as np

__all__ = ["encode_png", "write_png"]

_SIGNATURE = b"\x89PNG\r\n\x1a\n"


def _chunk(tag: bytes, payload: bytes) -> bytes:
    crc = zlib.crc32(tag + payload) & 0xFFFFFFFF
    return struct.pack(">I", len(payload)) + tag + payload + struct.pack(">I", crc)


def encode_png(pixels: np.ndarray, compresslevel: int = 6) -> bytes:
    """Encode an ``(h, w, 3)`` uint8 RGB array as PNG bytes."""
    arr = np.asarray(pixels)
    if arr.ndim != 3 or arr.shape[2] != 3 or arr.dtype != np.uint8:
        raise ValueError("expected an (h, w, 3) uint8 array")
    height, width = arr.shape[:2]
    if height == 0 or width == 0:
        raise ValueError("image must be non-empty")

    ihdr = struct.pack(
        ">IIBBBBB",
        width,
        height,
        8,  # bit depth
        2,  # color type: truecolor
        0,  # compression
        0,  # filter method
        0,  # interlace
    )
    # Prepend the per-scanline filter byte (0 = None) in one shot.
    raw = np.empty((height, 1 + width * 3), dtype=np.uint8)
    raw[:, 0] = 0
    raw[:, 1:] = arr.reshape(height, width * 3)
    idat = zlib.compress(raw.tobytes(), compresslevel)

    return b"".join(
        (
            _SIGNATURE,
            _chunk(b"IHDR", ihdr),
            _chunk(b"IDAT", idat),
            _chunk(b"IEND", b""),
        )
    )


def write_png(pixels: np.ndarray, path: str | os.PathLike, compresslevel: int = 6) -> None:
    """Write an RGB array to ``path`` as a PNG file."""
    data = encode_png(pixels, compresslevel)
    with open(path, "wb") as fp:
        fp.write(data)
