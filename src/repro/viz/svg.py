"""Minimal SVG document builder (vector backend of the visualizer)."""

from __future__ import annotations

import os
from xml.sax.saxutils import escape

__all__ = ["SVGCanvas"]


def _fmt(value: float) -> str:
    """Compact numeric formatting for attribute values."""
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


class SVGCanvas:
    """Accumulates SVG elements and serialises the document.

    Coordinates follow the same image convention as
    :class:`repro.viz.canvas.Canvas` so chart code can target either
    backend with identical geometry.
    """

    def __init__(self, width: float, height: float, background: str = "#fcfcfa") -> None:
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = width
        self.height = height
        self._parts: list[str] = [
            f'<rect x="0" y="0" width="{_fmt(width)}" height="{_fmt(height)}" '
            f'fill="{background}"/>'
        ]

    def rect(
        self,
        x: float,
        y: float,
        w: float,
        h: float,
        fill: str,
        stroke: str | None = None,
        stroke_width: float = 1.0,
        title: str | None = None,
    ) -> None:
        attrs = (
            f'x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(w)}" height="{_fmt(h)}" '
            f'fill="{fill}"'
        )
        if stroke:
            attrs += f' stroke="{stroke}" stroke-width="{_fmt(stroke_width)}"'
        if title:
            self._parts.append(
                f"<rect {attrs}><title>{escape(title)}</title></rect>"
            )
        else:
            self._parts.append(f"<rect {attrs}/>")

    def line(
        self,
        x0: float,
        y0: float,
        x1: float,
        y1: float,
        stroke: str = "#000000",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        attrs = (
            f'x1="{_fmt(x0)}" y1="{_fmt(y0)}" x2="{_fmt(x1)}" y2="{_fmt(y1)}" '
            f'stroke="{stroke}" stroke-width="{_fmt(stroke_width)}"'
        )
        if opacity != 1.0:
            attrs += f' stroke-opacity="{opacity:.2f}"'
        self._parts.append(f"<line {attrs}/>")

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: float = 11.0,
        fill: str = "#1e1e1e",
        anchor: str = "start",
        rotate: float | None = None,
        bold: bool = False,
    ) -> None:
        attrs = (
            f'x="{_fmt(x)}" y="{_fmt(y)}" font-size="{_fmt(size)}" fill="{fill}" '
            f'text-anchor="{anchor}" font-family="monospace"'
        )
        if bold:
            attrs += ' font-weight="bold"'
        if rotate is not None:
            attrs += f' transform="rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})"'
        self._parts.append(f"<text {attrs}>{escape(content)}</text>")

    def group_start(self, title: str | None = None) -> None:
        self._parts.append("<g>")
        if title:
            self._parts.append(f"<title>{escape(title)}</title>")

    def group_end(self) -> None:
        self._parts.append("</g>")

    def tostring(self) -> str:
        body = "\n".join(self._parts)
        return (
            '<?xml version="1.0" encoding="UTF-8"?>\n'
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{_fmt(self.width)}" height="{_fmt(self.height)}" '
            f'viewBox="0 0 {_fmt(self.width)} {_fmt(self.height)}">\n'
            f"{body}\n</svg>\n"
        )

    def write(self, path: str | os.PathLike) -> None:
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(self.tostring())
