"""Benchmark regression radar: the paper's detection, aimed at ourselves.

The repo's benchmark harness leaves machine-readable ``BENCH_*.json``
records after every run (wall time, counters, git sha).  This module
turns those one-shot records into a *history* and runs the paper's own
performance-variation machinery over it:

* **store** — an append-ordered JSONL history, content-addressed by
  ``(bench, test, git_sha, machine fingerprint)``: re-recording the
  same build on the same machine replaces the old row in place, so CI
  retries never inflate the series;
* **outlier test** — the newest point of each series is compared
  against the trailing window with the robust median/MAD z-score the
  imbalance detector uses (scaled MAD, floored at 1 % of the median so
  a perfectly flat history cannot divide by zero);
* **drift test** — the O(n)-memory Theil–Sen estimator plus the
  Mann–Kendall significance test from :mod:`repro.core.variation`,
  flagging slow monotonic growth that never trips the outlier test.

``repro perf record`` ingests BENCH files, ``repro perf check`` exits
nonzero when any benchmark regressed (naming it), ``repro perf
report`` prints the trajectory.  CI runs ``check`` against a committed
fixture with an injected 2× slowdown (must trip) and against the real
history (must stay green).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Finding",
    "PerfHistory",
    "check_history",
    "format_findings",
    "format_report",
    "machine_fingerprint",
    "record_bench_files",
]

#: MAD-to-sigma scale for normally distributed data (matches
#: ``repro.core.imbalance``).
_MAD_SCALE = 1.4826


def machine_fingerprint() -> str:
    """Short content hash of the facts that make timings comparable.

    Two runs share a fingerprint iff they ran on the same platform,
    architecture and core count — series never mix machines.
    """
    facts = json.dumps(
        [
            platform.system(),
            platform.machine(),
            platform.python_implementation(),
            os.cpu_count() or 0,
        ],
        sort_keys=True,
    )
    return hashlib.sha256(facts.encode()).hexdigest()[:12]


# ---------------------------------------------------------------------------
# History store
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class PerfHistory:
    """Append-ordered benchmark history, one JSON object per line.

    Rows carry ``bench``/``test``/``wall_s``/``git_sha``/``machine``/
    ``recorded_at`` plus optional ``events_per_s``.  The identity key
    is ``(bench, test, git_sha, machine)`` — :meth:`add` replaces an
    existing row with the same key in place (same position), keeping
    one measurement per build per machine and a stable series order.
    """

    rows: list[dict] = field(default_factory=list)

    _KEY = ("bench", "test", "git_sha", "machine")

    @staticmethod
    def _key(row: dict) -> tuple:
        return tuple(row.get(k) or "" for k in PerfHistory._KEY)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "PerfHistory":
        rows: list[dict] = []
        path = os.fspath(path)
        if os.path.exists(path):
            with open(path, encoding="utf-8") as fh:
                for lineno, line in enumerate(fh, 1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        row = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise ValueError(
                            f"{path}:{lineno}: not valid JSON: {exc}"
                        ) from None
                    if not isinstance(row, dict):
                        raise ValueError(
                            f"{path}:{lineno}: expected an object"
                        )
                    rows.append(row)
        return cls(rows=rows)

    def save(self, path: str | os.PathLike) -> None:
        path = os.fspath(path)
        text = "".join(
            json.dumps(row, sort_keys=True) + "\n" for row in self.rows
        )
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)

    def add(self, row: dict) -> bool:
        """Insert ``row``; same-key rows are replaced.  True if new."""
        key = self._key(row)
        for i, existing in enumerate(self.rows):
            if self._key(existing) == key:
                self.rows[i] = row
                return False
        self.rows.append(row)
        return True

    def series(self) -> dict[tuple[str, str, str], list[dict]]:
        """Rows grouped by ``(bench, test, machine)``, oldest first.

        Sorted by ``recorded_at`` (stable: rows without a timestamp keep
        history order) so a hand-merged or re-concatenated history file
        still yields chronological series.
        """
        out: dict[tuple[str, str, str], list[dict]] = {}
        for row in self.rows:
            key = (
                str(row.get("bench") or ""),
                str(row.get("test") or ""),
                str(row.get("machine") or ""),
            )
            out.setdefault(key, []).append(row)
        for rows in out.values():
            rows.sort(key=lambda r: float(r.get("recorded_at") or 0.0))
        return out


def record_bench_files(
    history: PerfHistory,
    paths: list[str],
    sha: str | None = None,
    machine: str | None = None,
    timestamp: float | None = None,
) -> int:
    """Ingest ``BENCH_*.json`` records into ``history``.

    Returns the number of rows added or replaced.  Non-dict result
    entries (legacy flat schemas) are skipped — the harness only emits
    per-test dicts since the dual-copy writer landed.
    """
    machine = machine or machine_fingerprint()
    recorded_at = time.time() if timestamp is None else float(timestamp)
    n = 0
    for path in paths:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        bench = str(doc.get("bench") or os.path.basename(path))
        row_sha = sha or str(doc.get("git_sha") or "")
        results = doc.get("results", {})
        if not isinstance(results, dict):
            continue
        for test, entry in sorted(results.items()):
            if not isinstance(entry, dict) or "wall_s" not in entry:
                continue
            row = {
                "bench": bench,
                "test": test,
                "wall_s": float(entry["wall_s"]),
                "git_sha": row_sha,
                "machine": machine,
                "recorded_at": recorded_at,
            }
            eps = entry.get("events_per_s")
            if eps is not None:
                row["events_per_s"] = float(eps)
            history.add(row)
            n += 1
    return n


# ---------------------------------------------------------------------------
# Detection
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Finding:
    """One detected performance variation in a benchmark series."""

    bench: str
    test: str
    machine: str
    kind: str  # "outlier" | "drift"
    message: str
    latest_s: float
    baseline_s: float

    def format(self) -> str:
        return (
            f"[{self.kind}] {self.bench}::{self.test} "
            f"(machine {self.machine or '?'}): {self.message}"
        )


def _robust_scale(window: np.ndarray, med: float) -> float:
    mad = float(np.median(np.abs(window - med)))
    return max(_MAD_SCALE * mad, 0.01 * abs(med), 1e-12)


def check_history(
    history: PerfHistory,
    window: int = 20,
    threshold: float = 4.0,
    min_points: int = 5,
    min_relative: float = 0.10,
    drift_total: float = 0.15,
    drift_p: float = 0.05,
) -> list[Finding]:
    """Run outlier + drift detection over every series in ``history``.

    outlier:
        The latest point sits more than ``threshold`` robust z-scores
        *above* the trailing-window median **and** more than
        ``min_relative`` (fraction) above it — both conditions, so
        microsecond-flat series cannot alarm on noise.  Needs
        ``min_points`` measurements.
    drift:
        The Mann–Kendall test finds a significant (``p < drift_p``)
        monotonic increase and the Theil–Sen slope accumulates to more
        than ``drift_total`` relative growth across the series.  Needs
        ``2 * min_points`` measurements (slope on fewer is folklore).
    """
    from .core.variation import mann_kendall, theil_sen_slope

    findings: list[Finding] = []
    for (bench, test, machine), rows in sorted(history.series().items()):
        values = np.asarray([float(r["wall_s"]) for r in rows])
        n = len(values)
        if n >= min_points:
            trailing = values[max(0, n - 1 - window) : n - 1]
            med = float(np.median(trailing))
            latest = float(values[-1])
            scale = _robust_scale(trailing, med)
            z = (latest - med) / scale
            rel = (latest - med) / med if med > 0 else 0.0
            if z > threshold and rel > min_relative:
                findings.append(
                    Finding(
                        bench=bench,
                        test=test,
                        machine=machine,
                        kind="outlier",
                        message=(
                            f"latest {latest:.6g}s vs trailing median "
                            f"{med:.6g}s (+{100 * rel:.1f}%, "
                            f"robust z={z:.1f})"
                        ),
                        latest_s=latest,
                        baseline_s=med,
                    )
                )
        if n >= 2 * min_points:
            slope = theil_sen_slope(values)
            med_all = float(np.median(values))
            total_rel = slope * (n - 1) / med_all if med_all > 0 else 0.0
            _tau, p = mann_kendall(values)
            if slope > 0 and p < drift_p and total_rel > drift_total:
                findings.append(
                    Finding(
                        bench=bench,
                        test=test,
                        machine=machine,
                        kind="drift",
                        message=(
                            f"Theil–Sen slope +{100 * total_rel:.1f}% "
                            f"across {n} runs (Mann–Kendall p={p:.3g})"
                        ),
                        latest_s=float(values[-1]),
                        baseline_s=med_all,
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def format_findings(findings: list[Finding]) -> str:
    if not findings:
        return "perf radar: no variations detected"
    lines = [f"perf radar: {len(findings)} variation(s) detected"]
    lines.extend(f.format() for f in findings)
    return "\n".join(lines)


def format_report(history: PerfHistory) -> str:
    """Trajectory table: one row per series, newest measurement last."""
    lines = [
        f"{'bench::test':<52}{'runs':>6}{'median s':>12}"
        f"{'latest s':>12}{'delta':>8}"
    ]
    for (bench, test, machine), rows in sorted(history.series().items()):
        values = np.asarray([float(r["wall_s"]) for r in rows])
        med = float(np.median(values))
        latest = float(values[-1])
        delta = (latest - med) / med if med > 0 else 0.0
        label = f"{bench}::{test}"
        if len(label) > 50:
            label = label[:47] + "..."
        lines.append(
            f"{label:<52}{len(values):>6}{med:>12.5f}"
            f"{latest:>12.5f}{100 * delta:>+7.1f}%"
        )
    if len(lines) == 1:
        lines.append("  (history is empty)")
    return "\n".join(lines)
