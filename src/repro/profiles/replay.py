"""Vectorised stack replay: event streams → invocation tables.

The central data structure of the analysis layer is the
:class:`InvocationTable`: one row per complete ``ENTER``/``LEAVE`` pair
of one process, with inclusive/exclusive durations, stack depth and
parent links.  Everything downstream (profiles, dominant-function
selection, segmentation, SOS-times) consumes invocation tables rather
than raw events.

The matching is vectorised: rather than simulating a call stack event
by event, we exploit the fact that within one *frame depth* the enters
and leaves of a well-formed stream strictly alternate.  A single stable
argsort by depth therefore yields all matching pairs at once (the
"group by depth, pair adjacent" trick), which is O(n log n) in NumPy
instead of an O(n) Python-level loop — in practice ~30x faster for
million-event streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.events import EventKind, EventList
from ..trace.trace import Trace

__all__ = [
    "InvocationTable",
    "match_invocations",
    "replay_trace",
    "table_from_pairing",
    "REPLAY_COLUMNS",
]

#: Event columns stack replay actually reads.  Projected loads
#: (``TraceIndex.load(..., columns=REPLAY_COLUMNS)``) may restrict the
#: materialised columns to this set; the projection tests assert the
#: declaration stays truthful.
REPLAY_COLUMNS = ("time", "kind", "ref")


@dataclass(frozen=True, slots=True)
class InvocationTable:
    """Structure-of-arrays table of completed region invocations.

    Attributes
    ----------
    region:
        Region id of each invocation.
    t_enter, t_leave:
        Timestamps of the enter/leave events.
    inclusive:
        ``t_leave - t_enter``.
    exclusive:
        Inclusive time minus the inclusive times of direct children.
    depth:
        1-based stack depth of the frame.
    parent:
        Row index of the directly enclosing invocation, -1 at top level.
    outermost:
        True where no ancestor invocation has the same region
        (used to aggregate inclusive time without double-counting
        recursion).
    enter_index, leave_index:
        Row positions of the corresponding events in the originating
        :class:`~repro.trace.events.EventList`.

    Rows are ordered by ``t_enter`` (stable; i.e. parents precede
    children).
    """

    region: np.ndarray
    t_enter: np.ndarray
    t_leave: np.ndarray
    inclusive: np.ndarray
    exclusive: np.ndarray
    depth: np.ndarray
    parent: np.ndarray
    outermost: np.ndarray
    enter_index: np.ndarray
    leave_index: np.ndarray

    def __len__(self) -> int:
        return len(self.region)

    def for_region(self, region_id: int) -> "InvocationTable":
        """Rows whose region equals ``region_id``."""
        return self.select(self.region == region_id)

    def select(self, mask: np.ndarray) -> "InvocationTable":
        """Subset rows; ``parent`` links are remapped (or -1 if dropped)."""
        idx = np.flatnonzero(mask)
        remap = np.full(len(self.region), -1, dtype=np.int64)
        remap[idx] = np.arange(len(idx))
        parent = self.parent[idx]
        new_parent = np.where(parent >= 0, remap[parent], -1)
        return InvocationTable(
            region=self.region[idx],
            t_enter=self.t_enter[idx],
            t_leave=self.t_leave[idx],
            inclusive=self.inclusive[idx],
            exclusive=self.exclusive[idx],
            depth=self.depth[idx],
            parent=new_parent,
            outermost=self.outermost[idx],
            enter_index=self.enter_index[idx],
            leave_index=self.leave_index[idx],
        )

    @classmethod
    def empty(cls) -> "InvocationTable":
        z_f = np.empty(0, dtype=np.float64)
        z_i = np.empty(0, dtype=np.int64)
        z_b = np.empty(0, dtype=bool)
        return cls(
            region=np.empty(0, dtype=np.int32),
            t_enter=z_f,
            t_leave=z_f,
            inclusive=z_f,
            exclusive=z_f,
            depth=np.empty(0, dtype=np.int32),
            parent=z_i,
            outermost=z_b,
            enter_index=z_i,
            leave_index=z_i,
        )


def _pair_by_depth(kind_pm: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Match enter (+1) / leave (-1) events into frames.

    Parameters
    ----------
    kind_pm:
        Array of +1 (enter) / -1 (leave) in stream order; must be
        balanced and properly nested.

    Returns
    -------
    (enter_pos, leave_pos, depth):
        Positions (into ``kind_pm``) of each frame's enter and leave,
        and the frame's 1-based depth, ordered by enter position.
    """
    depth_after = np.cumsum(kind_pm)
    if len(depth_after) and (depth_after[-1] != 0 or np.any(depth_after < 0)):
        raise ValueError("unbalanced enter/leave stream")
    # Frame depth: for an enter, depth after the event; for a leave,
    # depth before the event (= depth_after + 1).
    frame_depth = np.where(kind_pm > 0, depth_after, depth_after + 1)

    order = np.argsort(frame_depth, kind="stable")
    # Within each depth chunk events alternate enter, leave, enter, ...
    enter_pos = order[0::2]
    leave_pos = order[1::2]
    if np.any(kind_pm[enter_pos] != 1) or np.any(kind_pm[leave_pos] != -1):
        raise ValueError("stream is not properly nested")
    # Sort frames by enter position so parents precede children.  Depth
    # is a lossless int32 downcast: real call stacks are far below 2^31.
    frame_order = np.argsort(enter_pos, kind="stable")
    enter_pos = enter_pos[frame_order]
    leave_pos = leave_pos[frame_order]
    return enter_pos, leave_pos, frame_depth[enter_pos].astype(np.int32)


def _parents(enter_pos: np.ndarray, leave_pos: np.ndarray, depth: np.ndarray) -> np.ndarray:
    """Parent row of each frame: the last not-yet-closed frame one level up.

    With frames sorted by enter position, the parent of frame *i* at
    depth *d* is the most recent frame at depth *d-1* whose enter
    position precedes ``enter_pos[i]``.  Computed depth level by depth
    level with searchsorted (vectorised per level).
    """
    n = len(enter_pos)
    parent = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return parent
    max_depth = int(depth.max())
    rows_at: dict[int, np.ndarray] = {
        d: np.flatnonzero(depth == d) for d in range(1, max_depth + 1)
    }
    for d in range(2, max_depth + 1):
        rows = rows_at[d]
        up = rows_at[d - 1]
        if len(rows) == 0 or len(up) == 0:
            continue
        pos = np.searchsorted(enter_pos[up], enter_pos[rows], side="left") - 1
        parent[rows] = up[pos]
    return parent


def _outermost_flags(
    region: np.ndarray, t_enter: np.ndarray, t_leave: np.ndarray
) -> np.ndarray:
    """True where the invocation has no same-region ancestor.

    Same-region invocations of one process are either disjoint or
    nested; sorted by enter time, an invocation is nested inside an
    earlier one exactly when its leave time does not exceed the running
    maximum of earlier leave times.
    """
    n = len(region)
    outer = np.ones(n, dtype=bool)
    if n == 0:
        return outer
    order = np.lexsort((t_enter, region))
    reg_sorted = region[order]
    t1_sorted = t_leave[order]
    # Running max of leave times within each region group, excluding self.
    boundaries = np.flatnonzero(np.diff(reg_sorted)) + 1
    prev_max = np.empty(n, dtype=np.float64)
    start = 0
    for stop in list(boundaries) + [n]:
        seg = t1_sorted[start:stop]
        run = np.maximum.accumulate(seg)
        prev_max[start] = -np.inf
        prev_max[start + 1 : stop] = run[:-1]
        start = stop
    nested = t1_sorted <= prev_max
    outer[order] = ~nested
    return outer


def _build_table(
    events: EventList,
    el_idx: np.ndarray,
    enter_pos: np.ndarray,
    leave_pos: np.ndarray,
    depth: np.ndarray,
) -> InvocationTable:
    """Assemble the table from a pairing already sorted by enter position."""
    enter_index = el_idx[enter_pos]
    leave_index = el_idx[leave_pos]
    region_enter = events.ref[enter_index]
    if np.any(region_enter != events.ref[leave_index]):
        raise ValueError("mismatched enter/leave region references")

    t_enter = events.time[enter_index]
    t_leave = events.time[leave_index]
    inclusive = t_leave - t_enter

    parent = _parents(enter_pos, leave_pos, depth)

    # Exclusive time: subtract each child's inclusive time from its parent.
    child_sum = np.zeros(len(enter_pos), dtype=np.float64)
    has_parent = parent >= 0
    np.add.at(child_sum, parent[has_parent], inclusive[has_parent])
    exclusive = inclusive - child_sum

    outermost = _outermost_flags(region_enter, t_enter, t_leave)

    # The gathers above already produced fresh arrays of the canonical
    # dtypes (ref is int32, time float64, el_idx int64), so no astype
    # round-trips are needed — asarray is a no-op unless a caller fed
    # non-canonical columns.
    return InvocationTable(
        region=np.asarray(region_enter, dtype=np.int32),
        t_enter=np.asarray(t_enter, dtype=np.float64),
        t_leave=np.asarray(t_leave, dtype=np.float64),
        inclusive=np.asarray(inclusive, dtype=np.float64),
        exclusive=np.asarray(exclusive, dtype=np.float64),
        depth=depth,
        parent=parent,
        outermost=outermost,
        enter_index=np.asarray(enter_index, dtype=np.int64),
        leave_index=np.asarray(leave_index, dtype=np.int64),
    )


def match_invocations(events: EventList) -> InvocationTable:
    """Build the invocation table for one process stream.

    Raises
    ------
    ValueError
        If the stream's enter/leave events are unbalanced or not
        properly nested (run :func:`repro.trace.validate_trace` for a
        precise diagnosis).
    """
    is_enter = events.kind == EventKind.ENTER
    is_leave = events.kind == EventKind.LEAVE
    el_mask = is_enter | is_leave
    el_idx = np.flatnonzero(el_mask)
    if len(el_idx) == 0:
        return InvocationTable.empty()

    kind_pm = np.where(is_enter[el_idx], 1, -1).astype(np.int64)
    enter_pos, leave_pos, depth = _pair_by_depth(kind_pm)
    return _build_table(events, el_idx, enter_pos, leave_pos, depth)


def table_from_pairing(
    events: EventList,
    el_idx: np.ndarray,
    enter_pos: np.ndarray,
    leave_pos: np.ndarray,
    depth_after: np.ndarray,
) -> InvocationTable:
    """Build the invocation table from an existing enter/leave pairing.

    The fused analysis kernel (:mod:`repro.core.fused`) validates each
    stream through the lint engine, whose :class:`~repro.lint.engine.RankView`
    already computed the depth-trick pairing — this entry point reuses
    it instead of re-deriving masks and re-sorting, and is bitwise
    identical to :func:`match_invocations` on balanced streams.

    ``enter_pos``/``leave_pos`` index into ``el_idx`` in depth order (as
    produced by the view); ``depth_after`` is the running enter/leave
    cumsum over ``el_idx``, which at an enter position equals the
    frame's 1-based depth.
    """
    if len(el_idx) == 0:
        return InvocationTable.empty()
    frame_order = np.argsort(enter_pos, kind="stable")
    enter_pos = enter_pos[frame_order]
    leave_pos = leave_pos[frame_order]
    depth = depth_after[enter_pos].astype(np.int32)
    return _build_table(events, el_idx, enter_pos, leave_pos, depth)


def _resolve_workers(parallel: bool | int | None, n_ranks: int) -> int:
    """Worker count for ``parallel``: None/False → 1, True → cpu count."""
    if parallel is None or parallel is False:
        return 1
    if parallel is True:
        import os

        return max(1, min(n_ranks, os.cpu_count() or 1))
    workers = int(parallel)
    if workers < 1:
        raise ValueError(f"parallel worker count must be >= 1, got {workers}")
    return min(workers, max(1, n_ranks))


def replay_trace(
    trace: Trace, parallel: bool | int | None = None
) -> dict[int, InvocationTable]:
    """Invocation tables for every process of ``trace`` (keyed by rank).

    Parameters
    ----------
    parallel:
        ``None``/``False`` replays serially; ``True`` uses one thread
        per CPU core; an integer pins the worker count.  The matching
        kernels are NumPy argsorts/cumsums that release the GIL, so
        threads scale without pickling the event arrays.  The merge is
        deterministic: results are keyed in rank order regardless of
        completion order.
    """
    ranks = trace.ranks
    workers = _resolve_workers(parallel, len(ranks))
    if workers <= 1 or len(ranks) <= 1:
        return {rank: match_invocations(trace.events_of(rank)) for rank in ranks}
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=workers) as pool:
        tables = pool.map(lambda r: match_invocations(trace.events_of(r)), ranks)
        return dict(zip(ranks, tables))
