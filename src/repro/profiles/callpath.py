"""Call-path tree aggregation.

Aggregates invocation tables into a call tree keyed by region path
(``main → iterate → solve``), the structure HPCToolkit-style viewers
display.  Used by the report generator to show *where* a hotspot
function is called from, and by tests as an independent check of the
replay's parent links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


from ..trace.trace import Trace
from .replay import InvocationTable, replay_trace

__all__ = ["CallPathNode", "CallTree", "build_call_tree"]


@dataclass(slots=True)
class CallPathNode:
    """One node of the aggregated call tree."""

    region: int
    name: str
    count: int = 0
    inclusive_sum: float = 0.0
    exclusive_sum: float = 0.0
    children: dict[int, "CallPathNode"] = field(default_factory=dict)

    def child(self, region: int, name: str) -> "CallPathNode":
        node = self.children.get(region)
        if node is None:
            node = CallPathNode(region=region, name=name)
            self.children[region] = node
        return node

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "CallPathNode"]]:
        """Depth-first traversal yielding ``(depth, node)`` pairs."""
        yield depth, self
        for key in sorted(self.children):
            yield from self.children[key].walk(depth + 1)


class CallTree:
    """Aggregated call tree of a trace (all processes merged).

    The virtual root has ``region == -1``; its children are the
    top-level regions of each process (typically ``main``).
    """

    def __init__(self, root: CallPathNode) -> None:
        self.root = root

    def paths(self) -> dict[tuple[str, ...], CallPathNode]:
        """Flatten to ``path-of-names → node`` (excluding the root)."""
        out: dict[tuple[str, ...], CallPathNode] = {}

        def rec(node: CallPathNode, prefix: tuple[str, ...]) -> None:
            for child in node.children.values():
                path = prefix + (child.name,)
                out[path] = child
                rec(child, path)

        rec(self.root, ())
        return out

    def format(self, max_depth: int | None = None, time_unit: str = "s") -> str:
        """Render an indented text view of the tree."""
        lines = []
        for depth, node in self.root.walk():
            if node.region < 0:
                continue
            d = depth - 1
            if max_depth is not None and d > max_depth:
                continue
            lines.append(
                f"{'  ' * d}{node.name}  "
                f"[count={node.count}, incl={node.inclusive_sum:.6g}{time_unit}, "
                f"excl={node.exclusive_sum:.6g}{time_unit}]"
            )
        return "\n".join(lines)


def _accumulate(trace: Trace, table: InvocationTable, root: CallPathNode) -> None:
    """Insert one process' invocations into the shared tree."""
    if len(table) == 0:
        return
    # Rows are ordered parents-first, so each row's node can be resolved
    # from its parent's already-resolved node.
    nodes: list[CallPathNode] = [None] * len(table)  # type: ignore[list-item]
    regions = table.region
    parents = table.parent
    names = trace.regions
    for i in range(len(table)):
        parent_idx = parents[i]
        base = root if parent_idx < 0 else nodes[parent_idx]
        node = base.child(int(regions[i]), names[int(regions[i])].name)
        node.count += 1
        node.inclusive_sum += float(table.inclusive[i])
        node.exclusive_sum += float(table.exclusive[i])
        nodes[i] = node


def build_call_tree(
    trace: Trace, tables: dict[int, InvocationTable] | None = None
) -> CallTree:
    """Aggregate the call tree of ``trace`` across all processes."""
    if tables is None:
        tables = replay_trace(trace)
    root = CallPathNode(region=-1, name="<root>")
    for rank in sorted(tables):
        _accumulate(trace, tables[rank], root)
    return CallTree(root)
