"""CSV/JSON export of profiles and analysis artifacts.

Analysts routinely post-process findings in spreadsheets or notebooks;
these exporters provide the stable, flat formats for that: the flat
profile, per-rank summaries and the full segment/SOS table.
"""

from __future__ import annotations

import csv
import json
import os
from typing import TYPE_CHECKING


from .profile import TraceProfile

if TYPE_CHECKING:  # pragma: no cover
    from ..core.pipeline import VariationAnalysis

__all__ = [
    "write_profile_csv",
    "write_rank_summary_csv",
    "write_segments_csv",
    "write_analysis_json",
]


def write_profile_csv(profile: TraceProfile, path: str | os.PathLike) -> int:
    """Write the flat profile; returns the number of data rows."""
    rows = profile.stats.rows()
    with open(path, "w", newline="", encoding="utf-8") as fp:
        writer = csv.writer(fp)
        writer.writerow(
            ["function", "paradigm", "count", "inclusive_sum",
             "exclusive_sum", "inclusive_min", "inclusive_max"]
        )
        for row in rows:
            region = profile.trace.regions[row.region]
            writer.writerow(
                [
                    row.name,
                    region.paradigm.name,
                    row.count,
                    f"{row.inclusive_sum:.9g}",
                    f"{row.exclusive_sum:.9g}",
                    f"{row.inclusive_min:.9g}",
                    f"{row.inclusive_max:.9g}",
                ]
            )
    return len(rows)


def write_rank_summary_csv(
    analysis: "VariationAnalysis", path: str | os.PathLike
) -> int:
    """Per-rank totals: SOS, sync, duration, segment count."""
    sos = analysis.sos
    ranks = sos.ranks
    with open(path, "w", newline="", encoding="utf-8") as fp:
        writer = csv.writer(fp)
        writer.writerow(
            ["rank", "segments", "total_duration", "total_sync",
             "total_sos", "max_segment_sos"]
        )
        for rank in ranks:
            r = sos[rank]
            writer.writerow(
                [
                    rank,
                    len(r),
                    f"{float(r.duration.sum()):.9g}",
                    f"{float(r.sync_time.sum()):.9g}",
                    f"{float(r.sos.sum()):.9g}",
                    f"{float(r.sos.max()) if len(r) else 0.0:.9g}",
                ]
            )
    return len(ranks)


def write_segments_csv(
    analysis: "VariationAnalysis", path: str | os.PathLike
) -> int:
    """Full segment table (one row per dominant-function invocation)."""
    sos = analysis.sos
    seg = analysis.segmentation
    n = 0
    with open(path, "w", newline="", encoding="utf-8") as fp:
        writer = csv.writer(fp)
        writer.writerow(
            ["rank", "segment", "t_start", "t_stop", "duration",
             "sync_time", "sos"]
        )
        for rank in sos.ranks:
            r = sos[rank]
            s = seg[rank]
            for i in range(len(r)):
                writer.writerow(
                    [
                        rank,
                        i,
                        f"{float(s.t_start[i]):.9g}",
                        f"{float(s.t_stop[i]):.9g}",
                        f"{float(r.duration[i]):.9g}",
                        f"{float(r.sync_time[i]):.9g}",
                        f"{float(r.sos[i]):.9g}",
                    ]
                )
                n += 1
    return n


def write_analysis_json(
    analysis: "VariationAnalysis", path: str | os.PathLike
) -> None:
    """The :meth:`~repro.core.pipeline.VariationAnalysis.to_dict` payload."""
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(analysis.to_dict(), fp, indent=2)
