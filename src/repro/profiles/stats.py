"""Per-function aggregated statistics (flat profile).

This is the data a classical profiler (TAU, HPCToolkit) reports and the
input to the dominant-function heuristic of the paper's Section IV:
aggregated inclusive time and invocation counts per function, across
all processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.trace import Trace
from .replay import InvocationTable, replay_trace

__all__ = [
    "RegionStats",
    "FunctionStatistics",
    "compute_statistics",
    "rank_statistics_arrays",
    "merge_statistics_arrays",
]


@dataclass(frozen=True, slots=True)
class RegionStats:
    """Aggregated timings of one region across the whole run.

    ``inclusive_sum`` counts *outermost* invocations only, so recursive
    functions are not double-counted; ``count`` counts every invocation
    (that is what the paper's ``>= 2p`` criterion refers to).
    """

    region: int
    name: str
    count: int
    inclusive_sum: float
    exclusive_sum: float
    inclusive_min: float
    inclusive_max: float

    @property
    def inclusive_mean(self) -> float:
        return self.inclusive_sum / self.count if self.count else 0.0


#: Column arrays carried by one per-rank statistics partial.
_STAT_COLUMNS = (
    "count",
    "inclusive_sum",
    "exclusive_sum",
    "inclusive_min",
    "inclusive_max",
)


def _empty_statistics_arrays(n_regions: int) -> dict[str, np.ndarray]:
    return {
        "count": np.zeros(n_regions, dtype=np.int64),
        "inclusive_sum": np.zeros(n_regions, dtype=np.float64),
        "exclusive_sum": np.zeros(n_regions, dtype=np.float64),
        "inclusive_min": np.full(n_regions, np.inf, dtype=np.float64),
        "inclusive_max": np.full(n_regions, -np.inf, dtype=np.float64),
    }


def rank_statistics_arrays(
    table: InvocationTable, n_regions: int
) -> dict[str, np.ndarray]:
    """Per-region statistics contributed by one rank's invocation table.

    This is the *unit of merging* for distributed/sharded profiling:
    the full-trace statistics are defined as the rank-order merge of
    these per-rank partials (see :func:`merge_statistics_arrays`), so
    any process that holds only some ranks can compute its partials
    independently and the combined result is bit-identical no matter
    how ranks were grouped into shards.
    """
    out = _empty_statistics_arrays(n_regions)
    if len(table) == 0:
        return out
    np.add.at(out["count"], table.region, 1)
    outer = table.outermost
    np.add.at(out["inclusive_sum"], table.region[outer], table.inclusive[outer])
    np.add.at(out["exclusive_sum"], table.region, table.exclusive)
    np.minimum.at(out["inclusive_min"], table.region, table.inclusive)
    np.maximum.at(out["inclusive_max"], table.region, table.inclusive)
    return out


def merge_statistics_arrays(
    partials: "list[dict[str, np.ndarray]]", n_regions: int
) -> dict[str, np.ndarray]:
    """Merge statistics partials **in the given order**.

    Counts and time sums accumulate; min/max reduce element-wise.  The
    float sums make this order-sensitive at the last ulp, so callers
    that need exact reproducibility (the sharded engine, and
    :class:`FunctionStatistics` itself) always merge per-rank partials
    in ascending rank order — which is what makes shard-then-merge
    bitwise identical to the single-process computation.
    """
    acc = _empty_statistics_arrays(n_regions)
    for partial in partials:
        acc["count"] += partial["count"]
        acc["inclusive_sum"] += partial["inclusive_sum"]
        acc["exclusive_sum"] += partial["exclusive_sum"]
        np.minimum(acc["inclusive_min"], partial["inclusive_min"],
                   out=acc["inclusive_min"])
        np.maximum(acc["inclusive_max"], partial["inclusive_max"],
                   out=acc["inclusive_max"])
    return acc


class FunctionStatistics:
    """Column-oriented per-region statistics for one trace.

    Attributes (all NumPy arrays indexed by region id):

    * ``count`` — total invocation count across all processes.
    * ``inclusive_sum`` — aggregated inclusive time (outermost frames).
    * ``exclusive_sum`` — aggregated exclusive time (all frames).
    * ``inclusive_min`` / ``inclusive_max`` — extreme single-invocation
      inclusive durations (+inf/-inf for never-invoked regions).
    """

    def __init__(self, trace: Trace, tables: dict[int, InvocationTable]) -> None:
        n_regions = len(trace.regions)
        self._trace = trace
        merged = merge_statistics_arrays(
            [
                rank_statistics_arrays(tables[rank], n_regions)
                for rank in sorted(tables)
            ],
            n_regions,
        )
        for name in _STAT_COLUMNS:
            setattr(self, name, merged[name])

    _COLUMNS = _STAT_COLUMNS

    @classmethod
    def from_partials(
        cls, trace: Trace, partials: dict[int, dict[str, np.ndarray]]
    ) -> "FunctionStatistics":
        """Build full-trace statistics from per-rank partials.

        ``partials`` maps rank → :func:`rank_statistics_arrays` output;
        they are merged in ascending rank order, so the result is
        bit-identical to ``FunctionStatistics(trace, tables)`` over the
        same ranks regardless of how the partials were produced or
        grouped (the sharded engine relies on this).
        """
        n_regions = len(trace.regions)
        for rank, partial in partials.items():
            if len(partial["count"]) != n_regions:
                raise ValueError(
                    f"rank {rank} partial covers {len(partial['count'])} "
                    f"regions, trace defines {n_regions}"
                )
        merged = merge_statistics_arrays(
            [partials[rank] for rank in sorted(partials)], n_regions
        )
        self = object.__new__(cls)
        self._trace = trace
        for name in _STAT_COLUMNS:
            setattr(self, name, merged[name])
        return self

    @classmethod
    def from_arrays(
        cls, trace: Trace, arrays: dict[str, np.ndarray]
    ) -> "FunctionStatistics":
        """Rebuild statistics from previously exported column arrays.

        Used by the artifact cache (:mod:`repro.core.session`) to
        restore a profile without touching the invocation tables.
        """
        self = object.__new__(cls)
        self._trace = trace
        for name in cls._COLUMNS:
            setattr(self, name, np.asarray(arrays[name]))
        if len(self.count) != len(trace.regions):
            raise ValueError(
                f"statistics cover {len(self.count)} regions, trace defines "
                f"{len(trace.regions)}"
            )
        return self

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Column arrays for :meth:`from_arrays` (cache serialisation)."""
        return {name: getattr(self, name) for name in self._COLUMNS}

    @property
    def num_regions(self) -> int:
        return len(self.count)

    def of(self, region: int | str) -> RegionStats:
        """Statistics row for one region (by id or name)."""
        if isinstance(region, str):
            region = self._trace.regions.id_of(region)
        return RegionStats(
            region=region,
            name=self._trace.regions[region].name,
            count=int(self.count[region]),
            inclusive_sum=float(self.inclusive_sum[region]),
            exclusive_sum=float(self.exclusive_sum[region]),
            inclusive_min=float(self.inclusive_min[region]),
            inclusive_max=float(self.inclusive_max[region]),
        )

    def rows(self) -> list[RegionStats]:
        """All invoked regions, sorted by descending inclusive time."""
        order = np.argsort(-self.inclusive_sum, kind="stable")
        return [self.of(int(r)) for r in order if self.count[r] > 0]

    def top_exclusive(self, k: int = 10) -> list[RegionStats]:
        """The ``k`` regions with the largest aggregated exclusive time."""
        order = np.argsort(-self.exclusive_sum, kind="stable")
        out = [self.of(int(r)) for r in order if self.count[r] > 0]
        return out[:k]


def compute_statistics(
    trace: Trace, tables: dict[int, InvocationTable] | None = None
) -> FunctionStatistics:
    """Aggregate per-function statistics for ``trace``.

    ``tables`` may be passed to reuse invocation tables computed
    elsewhere in the pipeline (replay is the dominant cost).
    """
    if tables is None:
        tables = replay_trace(trace)
    return FunctionStatistics(trace, tables)
