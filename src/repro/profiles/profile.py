"""High-level profile facade combining flat stats and call tree.

:class:`TraceProfile` is the object the CLI's ``profile`` subcommand
and the baselines' profile-only analysis consume.  It also exposes
per-process breakdowns (time share per paradigm), which back the
"fraction of MPI" observations in the paper's case studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.definitions import Paradigm
from ..trace.trace import Trace
from .callpath import CallTree, build_call_tree
from .replay import InvocationTable, replay_trace
from .stats import FunctionStatistics, compute_statistics

__all__ = ["TraceProfile", "profile_trace"]


@dataclass(frozen=True, slots=True)
class ParadigmShare:
    """Exclusive-time share of one paradigm (e.g. 25% MPI)."""

    paradigm: Paradigm
    exclusive_sum: float
    share: float


class TraceProfile:
    """Aggregated profile of one trace.

    Parameters are normally supplied by :func:`profile_trace`; the
    invocation ``tables`` are retained so downstream passes (dominant
    function, SOS) can reuse them without re-replaying.
    """

    def __init__(
        self,
        trace: Trace,
        tables: dict[int, InvocationTable],
        stats: FunctionStatistics,
    ) -> None:
        self.trace = trace
        self.tables = tables
        self.stats = stats
        self._call_tree: CallTree | None = None

    @property
    def call_tree(self) -> CallTree:
        """Call tree, built lazily on first use."""
        if self._call_tree is None:
            self._call_tree = build_call_tree(self.trace, self.tables)
        return self._call_tree

    # -- paradigm shares -------------------------------------------------

    def paradigm_shares(self) -> list[ParadigmShare]:
        """Exclusive-time share per paradigm across the whole run."""
        totals: dict[Paradigm, float] = {}
        for region in self.trace.regions:
            t = float(self.stats.exclusive_sum[region.id])
            if t:
                totals[region.paradigm] = totals.get(region.paradigm, 0.0) + t
        grand = sum(totals.values())
        return sorted(
            (
                ParadigmShare(p, t, t / grand if grand else 0.0)
                for p, t in totals.items()
            ),
            key=lambda s: -s.exclusive_sum,
        )

    def paradigm_share(self, paradigm: Paradigm) -> float:
        """Fractional exclusive-time share of one paradigm (0.0 if absent)."""
        for share in self.paradigm_shares():
            if share.paradigm == paradigm:
                return share.share
        return 0.0

    def mpi_fraction(self, t0: float | None = None, t1: float | None = None) -> float:
        """Share of MPI time, optionally restricted to a window.

        The windowed variant recomputes exclusive shares from the
        invocation tables (clipping invocations to the window), which
        backs statements like "25% MPI fraction during the iterations"
        (paper Section VII-C).
        """
        if t0 is None and t1 is None:
            return self.paradigm_share(Paradigm.MPI)
        lo = self.trace.t_min if t0 is None else t0
        hi = self.trace.t_max if t1 is None else t1
        mpi_ids = set(int(i) for i in self.trace.mpi_region_ids())
        mpi_time = 0.0
        total_time = 0.0
        for table in self.tables.values():
            start = np.maximum(table.t_enter, lo)
            stop = np.minimum(table.t_leave, hi)
            overlap = np.clip(stop - start, 0.0, None)
            # Scale exclusive time by the clipped share of the frame.
            with np.errstate(invalid="ignore", divide="ignore"):
                frac = np.where(table.inclusive > 0, overlap / table.inclusive, 0.0)
            contrib = table.exclusive * frac
            is_mpi = np.isin(table.region, list(mpi_ids))
            mpi_time += float(contrib[is_mpi].sum())
            total_time += float(contrib.sum())
        return mpi_time / total_time if total_time else 0.0

    # -- per-process view -------------------------------------------------

    def per_rank_exclusive(self, region: int | str) -> np.ndarray:
        """Aggregated exclusive time of one region, per rank."""
        if isinstance(region, str):
            region = self.trace.regions.id_of(region)
        out = np.zeros(self.trace.num_processes, dtype=np.float64)
        for pos, rank in enumerate(self.trace.ranks):
            table = self.tables[rank]
            mask = table.region == region
            out[pos] = float(table.exclusive[mask].sum())
        return out

    def format_flat(self, k: int = 15) -> str:
        """Text rendering of the top-k flat profile by inclusive time."""
        rows = self.stats.rows()[:k]
        header = f"{'function':<32}{'count':>10}{'incl':>14}{'excl':>14}"
        lines = [header, "-" * len(header)]
        for r in rows:
            lines.append(
                f"{r.name:<32}{r.count:>10}{r.inclusive_sum:>14.6g}"
                f"{r.exclusive_sum:>14.6g}"
            )
        return "\n".join(lines)


def profile_trace(
    trace: Trace, tables: dict[int, InvocationTable] | None = None
) -> TraceProfile:
    """Compute the aggregated profile of ``trace``."""
    if tables is None:
        tables = replay_trace(trace)
    stats = compute_statistics(trace, tables)
    return TraceProfile(trace, tables, stats)
