"""Profiling substrate: stack replay, flat profiles, call trees."""

from .callpath import CallPathNode, CallTree, build_call_tree
from .export import (
    write_analysis_json,
    write_profile_csv,
    write_rank_summary_csv,
    write_segments_csv,
)
from .profile import TraceProfile, profile_trace
from .replay import InvocationTable, match_invocations, replay_trace
from .stats import (
    FunctionStatistics,
    RegionStats,
    compute_statistics,
    merge_statistics_arrays,
    rank_statistics_arrays,
)

__all__ = [
    "CallPathNode",
    "CallTree",
    "FunctionStatistics",
    "InvocationTable",
    "RegionStats",
    "TraceProfile",
    "build_call_tree",
    "write_analysis_json",
    "write_profile_csv",
    "write_rank_summary_csv",
    "write_segments_csv",
    "compute_statistics",
    "match_invocations",
    "merge_statistics_arrays",
    "profile_trace",
    "rank_statistics_arrays",
    "replay_trace",
]
