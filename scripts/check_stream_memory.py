#!/usr/bin/env python
"""CI gate: bounded-memory analysis of a multi-million-event trace.

The cursor engine's contract (docs/streaming.md) is that peak memory
follows ``chunk_events`` — derived from ``--max-memory-mb`` — rather
than the trace size.  This script enforces the claim end to end:

1. it synthesises a ~2M-event ``.rpt`` v2 (raw columns) trace,
2. computes an unconstrained reference analysis in-process,
3. re-runs the same analysis in a child process whose address space is
   capped with ``resource.setrlimit(RLIMIT_AS)`` just above the
   interpreter baseline plus the configured budget, under
   ``AnalysisSession(max_memory_mb=64)``,
4. fails if the child dies (OOM => MemoryError) or its result
   fingerprint drifts from the reference.

The cap leaves room for the analysis *products* (invocation tables,
profiles — proportional to the trace) but not for materialising the
full event arrays plus their working copies, which is what the
pre-cursor reader did; running the child without ``max_memory_mb``
(``--no-bound``, for tuning) exhausts the same cap.

Usage::

    PYTHONPATH=src python scripts/check_stream_memory.py
    PYTHONPATH=src python scripts/check_stream_memory.py --events 4000000
"""

from __future__ import annotations

import argparse
import hashlib
import os
import resource
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.session import AnalysisSession  # noqa: E402
from repro.trace import write_binary  # noqa: E402
from repro.trace.definitions import (  # noqa: E402
    Location,
    Paradigm,
    RegionRegistry,
)
from repro.trace.events import EventKind, EventList  # noqa: E402
from repro.trace.trace import Trace  # noqa: E402

RANKS = 16
#: Events per dominant-function invocation in the synthetic pattern
#: (iteration { work*inner, MPI_Allreduce }) with ``inner = 12``.
_PATTERN_EVENTS = 29


def build_trace(total_events: int) -> Trace:
    """A dense steady-state trace straight from NumPy tiles."""
    regions = RegionRegistry()
    r_iter = regions.register("iteration")
    r_work = regions.register("work")
    r_sync = regions.register("MPI_Allreduce", paradigm=Paradigm.MPI)

    inner = 12
    pattern = (
        [(EventKind.ENTER, r_iter)]
        + [(EventKind.ENTER, r_work), (EventKind.LEAVE, r_work)] * inner
        + [
            (EventKind.ENTER, r_sync),
            (EventKind.LEAVE, r_sync),
            (EventKind.LEAVE, r_iter),
        ]
    )
    invocations = max(total_events // (RANKS * len(pattern)), 1)
    kinds = np.tile(
        np.array([k for k, _ in pattern], np.uint8), invocations
    )
    refs = np.tile(
        np.array([r for _, r in pattern], np.int32), invocations
    )
    n = kinds.size

    trace = Trace(regions=regions, name="stream-memory-gate")
    rng = np.random.default_rng(7)
    for rank in range(RANKS):
        # Distinct per-rank time scales keep the statistics
        # non-degenerate without per-event Python cost.
        step = 1e-7 * (1.0 + 0.01 * rank)
        times = np.arange(n, dtype=np.float64) * step
        times += float(rng.uniform(0, 1e-8))
        trace.add_process(
            Location(id=rank, name=f"rank {rank}"),
            EventList(
                time=times,
                kind=kinds.copy(),
                ref=refs.copy(),
                partner=np.full(n, -1, np.int32),
                size=np.zeros(n, np.int64),
                tag=np.zeros(n, np.int32),
                value=np.zeros(n, np.float64),
            ),
        )
    return trace


def fingerprint(analysis) -> str:
    """Stable digest over the products the differential suite pins."""
    h = hashlib.sha256()
    h.update(str(analysis.dominant_name).encode())
    for rank in analysis.sos.ranks:
        sos = analysis.sos[rank]
        for arr in (sos.duration, sos.sync_time, sos.sos):
            h.update(np.ascontiguousarray(arr).tobytes())
    heat, edges = analysis.heat_matrix(bins=64)
    h.update(np.ascontiguousarray(heat).tobytes())
    h.update(np.ascontiguousarray(edges).tobytes())
    return h.hexdigest()


def _vm_size_bytes() -> int | None:
    try:
        with open("/proc/self/status") as fp:
            for line in fp:
                if line.startswith("VmSize:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return None


def _vm_peak_bytes() -> int | None:
    try:
        with open("/proc/self/status") as fp:
            for line in fp:
                if line.startswith("VmPeak:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return None


def run_child(args: argparse.Namespace) -> int:
    """Constrained analysis under an RLIMIT_AS cap (child process)."""
    import scipy.stats  # noqa: F401  (trend test; count it in the baseline)

    baseline = _vm_size_bytes()
    if baseline is None:
        print("no /proc/self/status; skipping the address-space cap",
              file=sys.stderr)
    elif not args.no_cap:
        limit = baseline + args.budget_bytes
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    kwargs = {} if args.no_bound else {"max_memory_mb": 64}
    session = AnalysisSession(None, source_path=args.trace, **kwargs)
    analysis = session.analysis()
    peak = _vm_peak_bytes()
    if baseline is not None and peak is not None:
        print(
            f"child baseline {baseline >> 20} MiB, "
            f"peak {peak >> 20} MiB (+{(peak - baseline) >> 20} MiB), "
            f"cap +{args.budget_bytes >> 20} MiB",
            file=sys.stderr,
        )
    print(f"FINGERPRINT {fingerprint(analysis)}")
    return 0


def run_parent(args: argparse.Namespace) -> int:
    workdir = Path(tempfile.mkdtemp(prefix="stream-memory-gate-"))
    trace_path = workdir / "gate.rpt"
    trace = build_trace(args.events)
    n_events = trace.num_events
    write_binary(trace, trace_path, version=2, codec="raw")
    size_mb = trace_path.stat().st_size / 1e6
    print(f"trace: {n_events} events, {size_mb:.0f} MB -> {trace_path}")

    reference = fingerprint(
        AnalysisSession(None, source_path=trace_path).analysis()
    )
    print(f"reference fingerprint: {reference[:16]}...")

    env = dict(os.environ)
    env["REPRO_NO_MMAP"] = "1"  # mapped files count against RLIMIT_AS
    env["REPRO_SHARD_WORKERS"] = "1"
    env.setdefault(
        "PYTHONPATH",
        str(Path(__file__).resolve().parent.parent / "src"),
    )
    cmd = [
        sys.executable, os.fspath(Path(__file__).resolve()),
        "--child", "--trace", os.fspath(trace_path),
        "--budget-bytes", str(args.budget_bytes),
    ]
    if args.no_bound:
        cmd.append("--no-bound")
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        print(proc.stdout)
        print(
            f"FAIL: constrained child exited {proc.returncode} "
            f"(out of memory under the {args.budget_bytes >> 20} MiB cap?)"
        )
        return 1
    lines = [
        ln for ln in proc.stdout.splitlines() if ln.startswith("FINGERPRINT ")
    ]
    if not lines:
        print(proc.stdout)
        print("FAIL: child produced no fingerprint")
        return 1
    got = lines[-1].split(None, 1)[1]
    if got != reference:
        print(f"FAIL: result drift under the memory bound\n"
              f"  reference {reference}\n  bounded   {got}")
        return 1
    print(
        f"OK: {n_events} events analyzed under --max-memory-mb 64 with a "
        f"{args.budget_bytes >> 20} MiB address-space allowance; result "
        "identical to the unconstrained run"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=2_000_000,
                        help="approximate total event count")
    parser.add_argument("--budget-bytes", type=int, default=128 << 20,
                        help="address space allowed on top of the "
                             "interpreter baseline (the bounded run "
                             "peaks ~90 MiB above it; the unbounded "
                             "reader needs ~220 MiB and trips the cap)")
    parser.add_argument("--child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--trace", help=argparse.SUPPRESS)
    parser.add_argument("--no-cap", action="store_true",
                        help="child: skip setrlimit (tuning)")
    parser.add_argument("--no-bound", action="store_true",
                        help="omit max_memory_mb (demonstrates the cap "
                             "catching the unbounded reader)")
    args = parser.parse_args(argv)
    if args.child:
        return run_child(args)
    return run_parent(args)


if __name__ == "__main__":
    raise SystemExit(main())
