#!/usr/bin/env python
"""CI gate: a 100 000-rank scenario generates to ``.rpt`` v2 in bounded memory.

The vectorized fast path's contract (docs/simulation.md) is that
generation cost scales with *columns*, not per-event Python objects:
timestamps are computed as whole NumPy arrays, the kind/ref/size/tag
columns are shared templates across ranks, and ``SimResult.write``
serialises the buffers straight into v2 codec blobs without ever
building a ``Trace`` or ``EventList``.  This script enforces the claim
end to end:

1. it runs a 100k-rank x 2-iteration synthetic scenario (4.8M events)
   in a child process whose address space is capped with
   ``resource.setrlimit(RLIMIT_AS)`` just above the interpreter
   baseline, and writes the result directly to ``.rpt`` v2,
2. fails if the child dies (OOM => MemoryError) or materialises a
   ``Trace`` on the way out,
3. regenerates the scenario unconstrained in the parent and fails if
   the capped child's file does not load back bitwise-identical.

The legacy object path would need hundreds of bytes per event (tens of
GiB at this scale) before even reaching the writer; the cap is sized
so only the columnar pipeline fits.

Usage::

    PYTHONPATH=src python scripts/check_sim_memory.py
    PYTHONPATH=src python scripts/check_sim_memory.py --ranks 50000
"""

from __future__ import annotations

import argparse
import os
import resource
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

RANKS = 100_000
ITERATIONS = 2


def _config(args: argparse.Namespace):
    from repro.sim.workloads.synthetic import SyntheticConfig

    return SyntheticConfig(ranks=args.ranks, iterations=args.iterations)


def _vm_bytes(field: str) -> int | None:
    try:
        with open("/proc/self/status") as fp:
            for line in fp:
                if line.startswith(field + ":"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return None


def run_child(args: argparse.Namespace) -> int:
    """Capped generation + direct write (child process)."""
    import numpy  # noqa: F401  (count it in the baseline)

    baseline = _vm_bytes("VmSize")
    if baseline is None:
        print("no /proc/self/status; skipping the address-space cap",
              file=sys.stderr)
    elif not args.no_cap:
        limit = baseline + args.budget_bytes
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))

    from repro.sim.workloads.synthetic import generate_result

    result = generate_result(_config(args))
    total = result.write(args.trace, codec="raw")
    if result._trace is not None:
        print("FAIL: the direct write path materialised a Trace")
        return 1

    peak = _vm_bytes("VmPeak")
    if baseline is not None and peak is not None:
        print(
            f"child baseline {baseline >> 20} MiB, "
            f"peak {peak >> 20} MiB (+{(peak - baseline) >> 20} MiB), "
            f"cap +{args.budget_bytes >> 20} MiB",
            file=sys.stderr,
        )
    print(f"GENERATED {result.events} {total}")
    return 0


def run_parent(args: argparse.Namespace) -> int:
    workdir = Path(tempfile.mkdtemp(prefix="sim-memory-gate-"))
    trace_path = workdir / "huge.rpt"

    env = dict(os.environ)
    env.setdefault(
        "PYTHONPATH",
        str(Path(__file__).resolve().parent.parent / "src"),
    )
    cmd = [
        sys.executable, os.fspath(Path(__file__).resolve()),
        "--child", "--trace", os.fspath(trace_path),
        "--ranks", str(args.ranks),
        "--iterations", str(args.iterations),
        "--budget-bytes", str(args.budget_bytes),
    ]
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        print(proc.stdout)
        print(
            f"FAIL: capped child exited {proc.returncode} "
            f"(out of memory under the {args.budget_bytes >> 20} MiB cap?)"
        )
        return 1
    lines = [
        ln for ln in proc.stdout.splitlines() if ln.startswith("GENERATED ")
    ]
    if not lines:
        print(proc.stdout)
        print("FAIL: child reported no generation result")
        return 1
    events, total = (int(x) for x in lines[-1].split()[1:3])
    size = trace_path.stat().st_size
    if size != total:
        print(f"FAIL: reported {total} bytes but the file has {size}")
        return 1
    print(
        f"child wrote {events} events across {args.ranks} ranks "
        f"({size / 1e6:.0f} MB v2/raw)"
    )

    if args.no_verify:
        print("OK (verification skipped)")
        return 0

    # Unconstrained reference: same scenario through SimResult.trace,
    # fingerprinted against a full load of the capped child's file.
    from repro.sim.workloads.synthetic import generate_result
    from repro.trace.fingerprint import fingerprint_trace
    from repro.trace.reader import TraceIndex

    reference = fingerprint_trace(generate_result(_config(args)).trace)
    loaded = TraceIndex(trace_path).load()
    if loaded.num_processes != args.ranks or loaded.num_events != events:
        print(
            f"FAIL: file loads as {loaded.num_processes} ranks / "
            f"{loaded.num_events} events (expected {args.ranks} / {events})"
        )
        return 1
    got = fingerprint_trace(loaded)
    if got.hexdigest != reference.hexdigest:
        print(f"FAIL: capped generation drifted from the reference\n"
              f"  reference {reference.hexdigest}\n"
              f"  capped    {got.hexdigest}")
        return 1
    print(
        f"OK: {events} events ({args.ranks} ranks) generated and written "
        f"to v2 under a {args.budget_bytes >> 20} MiB allowance, "
        "bitwise identical to the unconstrained run"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=RANKS)
    parser.add_argument("--iterations", type=int, default=ITERATIONS)
    parser.add_argument("--budget-bytes", type=int, default=1024 << 20,
                        help="address space allowed on top of the "
                             "interpreter baseline (the columnar run "
                             "peaks ~815 MiB above it at 100k ranks — "
                             "column matrices plus the v2 blob staging; "
                             "per-event objects would need tens of GiB)")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the parent-side fingerprint check")
    parser.add_argument("--child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--trace", help=argparse.SUPPRESS)
    parser.add_argument("--no-cap", action="store_true",
                        help="child: skip setrlimit (tuning)")
    args = parser.parse_args(argv)
    if args.child:
        return run_child(args)
    return run_parent(args)


if __name__ == "__main__":
    raise SystemExit(main())
