#!/usr/bin/env python
"""Bound the disabled-mode cost of the repro.obs instrumentation.

The observability subsystem promises near-zero cost while disabled:
every instrumented call site performs one module-flag test and returns
(``span()`` hands out a shared no-op singleton, ``Counter.add`` returns
before touching any state).  This script turns that promise into a CI
gate that is robust across machines:

1. run the E15 fast-path workload (16 ranks x 1500 iterations,
   504k events — the ``BENCH_fastpath.json`` reference analysis) with
   telemetry *enabled* and count every journal entry and instrument
   sample the run produces — an upper bound on the number of
   instrumented call sites the disabled run executes;
2. microbenchmark the disabled-mode primitives (``span()`` + no-op
   context manager, ``Counter.add``) on this machine;
3. assert ``entries x cost-per-call < threshold x analyze wall`` —
   i.e. even charging *every* instrumented site at full price, the
   disabled run cannot lose more than ``--threshold`` (default 5%)
   against the uninstrumented PR-4 fast path.

The sampling profiler (``--profile``) gets the same treatment: its
only per-sample work is one stack walk in the signal handler, so the
script microbenchmarks a representative-depth stack walk on this
machine and asserts ``walk-cost / sampling-interval <
--profiler-threshold`` (default 2%) — the machine-independent form of
"profiling costs under 2% of wall time".

The measured disabled wall is also printed next to the recorded
baseline from ``BENCH_fastpath.json`` for the perf trajectory; the
hard assertion is the machine-independent bound above (CI runners and
the bench host differ too much for an absolute wall comparison).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
import timeit

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


def _best_of(n: int, fn) -> float:
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=None, metavar="BENCH_JSON",
        help="BENCH_fastpath.json to print the recorded baseline from",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.05,
        help="maximum tolerated disabled-mode overhead fraction "
        "(default 0.05)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="best-of-N repetitions for the analyze wall (default 3)",
    )
    parser.add_argument(
        "--profiler-threshold", type=float, default=0.02,
        help="maximum tolerated sampling-profiler overhead fraction "
        "(default 0.02)",
    )
    parser.add_argument(
        "--profiler-interval-ms", type=float, default=5.0,
        help="sampling interval the bound is computed for (default "
        "5.0, matching --profile-interval)",
    )
    args = parser.parse_args()

    import repro.obs as obs
    from repro.core.session import AnalysisSession
    from repro.sim.workloads.synthetic import SyntheticConfig, generate
    from repro.trace import write_binary

    trace = generate(SyntheticConfig(ranks=16, iterations=1500, seed=3))
    with tempfile.TemporaryDirectory(prefix="repro-obs-overhead-") as tmp:
        path = os.path.join(tmp, "e15.rpt")
        write_binary(trace, path, version=2)

        def analyze() -> None:
            AnalysisSession(None, source_path=path).analysis()

        assert not obs.enabled()
        wall_disabled = _best_of(args.repeats, analyze)

        # Count the telemetry the instrumented pipeline emits: journal
        # entries cover every span edge and every counter/gauge sample.
        col = obs.enable()
        analyze()
        col = obs.disable()
        entries = sum(
            len(jrn["entries"]) for _, jrn in col._all_journals()
        )
        wall_enabled = _best_of(1, analyze)

    n_calls = 100_000
    span_s = timeit.timeit(
        "s = span('x')\ns.__enter__()\ns.__exit__(None, None, None)",
        setup="from repro.obs import span",
        number=n_calls,
    ) / n_calls
    counter_s = timeit.timeit(
        "c.add(1.0)",
        setup="from repro.obs import counter\nc = counter('x')",
        number=n_calls,
    ) / n_calls
    per_call = max(span_s, counter_s)

    est_overhead = entries * per_call
    ratio = est_overhead / wall_disabled
    print(f"analyze wall (telemetry disabled): {wall_disabled * 1e3:.2f} ms")
    print(f"analyze wall (telemetry enabled):  {wall_enabled * 1e3:.2f} ms")
    print(f"instrumented sites executed:       {entries}")
    print(f"disabled span cost:                {span_s * 1e9:.1f} ns/call")
    print(f"disabled counter cost:             {counter_s * 1e9:.1f} ns/call")
    print(
        f"estimated disabled-mode overhead:  {est_overhead * 1e6:.1f} us "
        f"({100 * ratio:.3f}% of the analyze wall)"
    )

    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as fp:
                doc = json.load(fp)
            base = doc["results"]["test_fused_analyze_speedup"]["wall_s"]
            print(
                f"recorded PR-4 baseline wall:       {base * 1e3:.2f} ms "
                f"({args.baseline}; different host, informational)"
            )
        except (OSError, KeyError, ValueError) as err:
            print(f"note: cannot read baseline {args.baseline}: {err}")

    if ratio >= args.threshold:
        print(
            f"FAIL: estimated disabled-mode overhead {100 * ratio:.2f}% "
            f">= {100 * args.threshold:.0f}%",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: disabled-mode overhead bound {100 * ratio:.3f}% "
        f"< {100 * args.threshold:.0f}%"
    )

    # -- sampling-profiler bound ---------------------------------------
    # Per sample the handler does one stack walk; everything else is
    # list appends.  Measure the walk at a representative depth (the
    # analyzer's session stack runs ~15-25 frames deep) and bound
    # walk-cost x sampling-rate against the wall clock.
    from repro.obs.profiler import _stack_of

    def _deep(n: int):
        if n == 0:
            return sys._getframe()
        return _deep(n - 1)

    frame = _deep(25)
    n_walks = 20_000
    walk_s = timeit.timeit(
        "f(frame)",
        globals={"f": _stack_of, "frame": frame},
        number=n_walks,
    ) / n_walks
    interval_s = args.profiler_interval_ms / 1000.0
    prof_ratio = walk_s / interval_s
    print(f"profiler stack-walk cost:          {walk_s * 1e6:.2f} us/sample "
          f"(depth 25)")
    print(
        f"estimated profiler overhead:       {100 * prof_ratio:.3f}% "
        f"at a {args.profiler_interval_ms:g} ms interval"
    )
    if prof_ratio >= args.profiler_threshold:
        print(
            f"FAIL: estimated profiler overhead {100 * prof_ratio:.2f}% "
            f">= {100 * args.profiler_threshold:.0f}%",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: profiler overhead bound {100 * prof_ratio:.3f}% "
        f"< {100 * args.profiler_threshold:.0f}%"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
