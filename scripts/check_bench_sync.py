#!/usr/bin/env python
"""Keep the two copies of each BENCH_*.json record byte-identical.

The benchmark harness persists machine-readable records twice: the
working copy under ``benchmarks/results/`` (next to the text reports)
and a canonical copy at the repo root (the cross-PR perf trajectory
that ``repro perf record`` ingests and CI gates read).  Both are
written from the same serialized payload by ``benchmarks/conftest.py``
— this script is the CI tripwire that keeps it that way:

* ``--check`` (default) exits 1 if any pair differs, if a mapped
  results file is missing, or if a root ``BENCH_*.json`` exists that
  the conftest mapping does not produce (an unmapped writer crept in);
* ``--fix`` copies ``benchmarks/results/`` over the root canonical
  copies (the results side is the one the harness regenerates).
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS = os.path.join(ROOT, "benchmarks", "results")

#: Mirror of ``benchmarks.conftest.CANONICAL_ROOT_COPIES`` — imported
#: when possible so the two cannot drift, duplicated as a fallback for
#: environments without pytest on the path.
_FALLBACK_MAPPING = {
    "fastpath": "BENCH_fastpath.json",
    "lint": "BENCH_lint.json",
    "sim": "BENCH_sim.json",
    "hb": "BENCH_hb.json",
    "streaming": "BENCH_stream.json",
}


def _mapping() -> dict[str, str]:
    sys.path.insert(0, os.path.join(ROOT, "benchmarks"))
    try:
        from conftest import CANONICAL_ROOT_COPIES  # type: ignore

        return dict(CANONICAL_ROOT_COPIES)
    except Exception:
        return dict(_FALLBACK_MAPPING)
    finally:
        sys.path.pop(0)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--check", action="store_true", default=True,
                      help="verify the copies match (default)")
    mode.add_argument("--fix", action="store_true",
                      help="copy benchmarks/results/ over the root copies")
    args = parser.parse_args()

    mapping = _mapping()
    problems: list[str] = []
    fixed = 0
    for name, root_name in sorted(mapping.items()):
        results_path = os.path.join(RESULTS, f"BENCH_{name}.json")
        root_path = os.path.join(ROOT, root_name)
        if not os.path.exists(results_path):
            problems.append(f"missing results copy: {results_path}")
            continue
        if args.fix:
            shutil.copyfile(results_path, root_path)
            fixed += 1
            continue
        if not os.path.exists(root_path):
            problems.append(f"missing root canonical copy: {root_path}")
            continue
        with open(results_path, "rb") as fh:
            results_bytes = fh.read()
        with open(root_path, "rb") as fh:
            root_bytes = fh.read()
        if results_bytes != root_bytes:
            problems.append(
                f"copies differ: {root_name} != "
                f"benchmarks/results/BENCH_{name}.json "
                "(run scripts/check_bench_sync.py --fix)"
            )

    # Any root BENCH file outside the mapping means someone added a
    # writer the conftest does not know about — the drift this script
    # exists to prevent.
    mapped_roots = set(mapping.values())
    for entry in sorted(os.listdir(ROOT)):
        if entry.startswith("BENCH_") and entry.endswith(".json"):
            if entry not in mapped_roots:
                problems.append(
                    f"unmapped root benchmark record: {entry} "
                    "(add it to CANONICAL_ROOT_COPIES in "
                    "benchmarks/conftest.py)"
                )

    if args.fix:
        print(f"synced {fixed} canonical root cop{'y' if fixed == 1 else 'ies'}")
        return 0
    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    print(f"OK: {len(mapping)} benchmark record pairs in sync")
    return 0


if __name__ == "__main__":
    sys.exit(main())
