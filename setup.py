"""Setup shim for environments without the `wheel` package.

All project metadata lives in pyproject.toml; this file only enables
legacy editable installs (`pip install -e . --no-use-pep517`) on
offline machines whose setuptools cannot build wheels.
"""

from setuptools import setup

setup()
