"""Tests for the command-line interface (in-process invocation)."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "syn.rpt"
    code = main(
        [
            "simulate",
            "synthetic",
            "--processes",
            "6",
            "--iterations",
            "8",
            "--seed",
            "5",
            "-o",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestSimulate:
    def test_writes_trace(self, trace_path, capsys):
        assert trace_path.exists()

    def test_jsonl_output(self, tmp_path):
        out = tmp_path / "t.jsonl"
        assert main(["simulate", "synthetic", "--processes", "2",
                     "--iterations", "2", "-o", str(out)]) == 0
        assert out.exists()

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["simulate", "synthetic", "-o", str(tmp_path / "t.xyz")])

    def test_workload_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["simulate", "mystery", "-o", "/tmp/x.rpt"])

    @pytest.mark.parametrize("workload", ["wrf"])
    def test_case_study_workload_small(self, workload, tmp_path):
        out = tmp_path / "w.rpt"
        assert main(["simulate", workload, "--processes", "4",
                     "--iterations", "3", "-o", str(out)]) == 0


class TestInfoValidateProfile:
    def test_info(self, trace_path, capsys):
        assert main(["info", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "processes: 6" in out
        assert "workload = synthetic" in out

    def test_validate_ok(self, trace_path, capsys):
        assert main(["validate", str(trace_path)]) == 0
        assert "well-formed" in capsys.readouterr().out

    def test_profile_flat(self, trace_path, capsys):
        assert main(["profile", str(trace_path), "-k", "5"]) == 0
        out = capsys.readouterr().out
        assert "iteration" in out
        assert "USER" in out

    def test_profile_tree(self, trace_path, capsys):
        assert main(["profile", str(trace_path), "--tree"]) == 0
        out = capsys.readouterr().out
        assert "main" in out and "count=" in out


class TestAnalyze:
    def test_basic_report(self, trace_path, capsys):
        assert main(["analyze", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "Dominant function selection" in out

    def test_ascii_heatmap(self, trace_path, capsys):
        assert main(["analyze", str(trace_path), "--ascii"]) == 0
        assert "\x1b[48;5;" in capsys.readouterr().out

    def test_json_export(self, trace_path, tmp_path, capsys):
        out = tmp_path / "a.json"
        assert main(["analyze", str(trace_path), "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["processes"] == 6

    def test_views_written(self, trace_path, tmp_path, capsys):
        views = tmp_path / "views"
        assert main(
            ["analyze", str(trace_path), "--views", str(views), "--bins", "32"]
        ) == 0
        assert (views / "sos_heatmap.png").exists()
        assert (views / "timeline.png").exists()

    def test_function_pinning(self, trace_path, capsys):
        assert main(["analyze", str(trace_path), "--function", "work"]) == 0
        assert "'work'" in capsys.readouterr().out

    def test_level(self, trace_path, capsys):
        assert main(["analyze", str(trace_path), "--level", "1"]) == 0


class TestShardFlags:
    def test_analyze_sharded_matches_unsharded(self, trace_path, capsys,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "1")
        assert main(["analyze", str(trace_path)]) == 0
        plain = capsys.readouterr().out
        assert main(["analyze", str(trace_path), "--shards", "3"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == plain

    def test_analyze_memory_bound(self, trace_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "1")
        assert main(
            ["analyze", str(trace_path), "--max-memory-mb", "0.2"]
        ) == 0
        assert "Dominant function selection" in capsys.readouterr().out

    def test_compare_sharded(self, trace_path, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "1")
        other = tmp_path / "other.rpt"
        assert main(["simulate", "synthetic", "--processes", "6",
                     "--iterations", "8", "--seed", "6", "-o",
                     str(other)]) == 0
        capsys.readouterr()
        assert main(["compare", str(trace_path), str(other),
                     "--shards", "2"]) == 0
        assert "total SOS" in capsys.readouterr().out

    def test_baselines_sharded(self, trace_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "1")
        assert main(["baselines", str(trace_path), "--shards", "2"]) == 0

    def test_bad_shard_values_rejected(self, trace_path, capsys):
        assert main(["analyze", str(trace_path), "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err
        assert main(
            ["analyze", str(trace_path), "--max-memory-mb", "-1"]
        ) == 2
        assert "--max-memory-mb" in capsys.readouterr().err

    def test_missing_file_with_shards(self, tmp_path, capsys):
        assert main(
            ["analyze", str(tmp_path / "nope.rpt"), "--shards", "2"]
        ) == 2
        assert "error" in capsys.readouterr().err.lower()


class TestRenderConvertBaselines:
    def test_render(self, trace_path, tmp_path, capsys):
        out = tmp_path / "r"
        assert main(["render", str(trace_path), "-o", str(out)]) == 0
        assert (out / "timeline.png").exists()

    def test_render_with_messages(self, trace_path, tmp_path):
        out = tmp_path / "rm"
        assert main(["render", str(trace_path), "-o", str(out),
                     "--messages"]) == 0

    def test_convert(self, trace_path, tmp_path, capsys):
        out = tmp_path / "conv.jsonl"
        assert main(["convert", str(trace_path), "-o", str(out)]) == 0
        assert main(["validate", str(out)]) == 0

    def test_baselines(self, trace_path, capsys):
        assert main(["baselines", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "profile-only" in out
        assert "pattern search" in out
        assert "representatives" in out
        assert "phase clustering" in out


class TestValidationFailure:
    def test_invalid_trace_exit_code(self, tmp_path, capsys):
        from repro.trace import write_jsonl
        from repro.trace.builder import TraceBuilder

        tb = TraceBuilder()
        tb.region("main")
        tb.process(0).enter(0.0, "main")
        trace = tb.freeze(check_stacks=False)
        path = tmp_path / "bad.jsonl"
        write_jsonl(trace, path)
        assert main(["validate", str(path)]) == 1
        assert "unclosed" in capsys.readouterr().out


class TestCompareAndHtml:
    def test_compare_command(self, trace_path, tmp_path, capsys):
        other = tmp_path / "other.rpt"
        assert main(["simulate", "synthetic", "--processes", "6",
                     "--iterations", "8", "--seed", "5", "-o", str(other)]) == 0
        assert main(["compare", str(trace_path), str(other)]) == 0
        out = capsys.readouterr().out
        assert "aligned" in out and "speedup" in out

    def test_compare_with_pinned_function(self, trace_path, tmp_path, capsys):
        other = tmp_path / "o2.rpt"
        main(["simulate", "synthetic", "--processes", "6", "--iterations",
              "8", "--seed", "7", "-o", str(other)])
        assert main(["compare", str(trace_path), str(other),
                     "--function", "work"]) == 0

    def test_html_report(self, trace_path, tmp_path, capsys):
        out = tmp_path / "report.html"
        assert main(["analyze", str(trace_path), "--html", str(out),
                     "--bins", "32"]) == 0
        content = out.read_text()
        assert content.startswith("<!DOCTYPE html>")
        assert "data:image/png;base64," in content

    def test_simulate_hybrid(self, tmp_path):
        out = tmp_path / "hy.rpt"
        assert main(["simulate", "hybrid_openmp", "--processes", "4",
                     "--iterations", "3", "-o", str(out)]) == 0
        assert main(["validate", str(out)]) == 0

class TestVersionAndBadInput:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.strip().split(".")  # dotted version string

    @pytest.mark.parametrize(
        "argv",
        [
            ["info", "{p}"],
            ["validate", "{p}"],
            ["profile", "{p}"],
            ["analyze", "{p}"],
            ["render", "{p}", "-o", "/tmp/out"],
            ["convert", "{p}", "-o", "/tmp/out.jsonl"],
            ["baselines", "{p}"],
            ["explain", "{p}"],
        ],
    )
    def test_missing_input_exit_code(self, argv, tmp_path, capsys):
        missing = tmp_path / "does-not-exist.rpt"
        argv = [a.format(p=missing) for a in argv]
        assert main(argv) == 2
        assert "does-not-exist" in capsys.readouterr().err

    def test_compare_missing_input(self, trace_path, tmp_path, capsys):
        missing = tmp_path / "nope.rpt"
        assert main(["compare", str(trace_path), str(missing)]) == 2
        assert capsys.readouterr().err

    def test_directory_as_input(self, tmp_path, capsys):
        assert main(["info", str(tmp_path)]) == 2

    def test_garbage_bytes_input(self, tmp_path, capsys):
        bad = tmp_path / "garbage.rpt"
        bad.write_bytes(b"\x00\x01 definitely not a trace")
        assert main(["analyze", str(bad)]) == 2


class TestSessionCacheCLI:
    def test_analyze_with_cache_dir(self, trace_path, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["analyze", str(trace_path), "--cache-dir",
                     str(cache)]) == 0
        out = capsys.readouterr().out
        assert "cache:" in out
        assert any(cache.glob("*.npz"))
        # Second run is warm and must still succeed.
        assert main(["analyze", str(trace_path), "--cache-dir",
                     str(cache)]) == 0

    def test_analyze_parallel(self, trace_path, capsys):
        assert main(["analyze", str(trace_path), "--parallel", "2"]) == 0

    def test_analyze_parallel_zero_rejected(self, trace_path, capsys):
        assert main(["analyze", str(trace_path), "--parallel", "0"]) == 2
        assert "--parallel" in capsys.readouterr().err

    def test_render_with_cache_dir(self, trace_path, tmp_path):
        cache = tmp_path / "cache"
        out = tmp_path / "views"
        assert main(["render", str(trace_path), "-o", str(out),
                     "--cache-dir", str(cache)]) == 0
        assert (out / "timeline.png").exists()
        assert any(cache.glob("inv-*.npz"))

    def test_cache_info_and_clear(self, trace_path, tmp_path, capsys):
        cache = tmp_path / "cache"
        main(["analyze", str(trace_path), "--cache-dir", str(cache)])
        assert main(["cache", "info", "--cache-dir", str(cache)]) == 0
        assert "artifacts" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(cache)]) == 0
        assert "removed" in capsys.readouterr().out
        assert not any(cache.glob("*.npz"))

    def test_cache_info_missing_dir(self, tmp_path, capsys):
        assert main(["cache", "info", "--cache-dir",
                     str(tmp_path / "never-created")]) == 0
        assert "no cache" in capsys.readouterr().out

    def test_baselines_with_cache(self, trace_path, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["baselines", str(trace_path), "--cache-dir",
                     str(cache)]) == 0
        assert "profile-only" in capsys.readouterr().out


class TestMonitor:
    def test_monitor_command(self, tmp_path, capsys):
        from repro.sim.workloads.synthetic import SyntheticConfig, generate
        from repro.trace import write_binary

        trace = generate(
            SyntheticConfig(ranks=6, iterations=12,
                            outliers={(2, 8): 0.06}, seed=5)
        )
        path = tmp_path / "mon.rpt"
        write_binary(trace, path)
        assert main(["monitor", str(path), "--function", "iteration"]) == 0
        out = capsys.readouterr().out
        assert "ALERT rank 2 segment 8" in out
        assert "streamed" in out

    @pytest.fixture()
    def monitor_trace(self):
        from repro.sim.workloads.synthetic import SyntheticConfig, generate

        return generate(
            SyntheticConfig(ranks=6, iterations=12,
                            outliers={(2, 8): 0.06}, seed=5)
        )

    def test_chunk_events_output_invariant(self, monitor_trace, tmp_path,
                                           capsys):
        from repro.trace import write_binary

        path = tmp_path / "mon.rpt"
        write_binary(monitor_trace, path, version=2, codec="raw")
        outputs = []
        for chunk in ("1", "4096"):
            assert main(["monitor", str(path), "--function", "iteration",
                         "--chunk-events", chunk]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert "ALERT rank 2 segment 8" in outputs[0]

    def test_window_flag_bounds_history(self, monitor_trace, tmp_path,
                                        capsys):
        from repro.trace import write_binary

        path = tmp_path / "mon.rpt"
        write_binary(monitor_trace, path)
        assert main(["monitor", str(path), "--function", "iteration",
                     "--window", "4"]) == 0
        out = capsys.readouterr().out
        assert "ALERT rank 2 segment 8" in out  # alerts survive eviction

    def test_follow_tails_live_jsonl(self, monitor_trace, tmp_path, capsys):
        import threading
        import time

        from repro.trace import write_jsonl

        full = tmp_path / "full.jsonl"
        write_jsonl(monitor_trace, full)
        live = tmp_path / "live.jsonl"
        live.write_text("")

        def writer():
            with open(live, "a") as fp:
                for line in full.read_text().splitlines(keepends=True):
                    fp.write(line)
                    fp.flush()
                    time.sleep(0.001)
                fp.write('{"record": "end"}\n')

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            assert main(["monitor", str(live), "--function", "iteration",
                         "--follow"]) == 0
        finally:
            thread.join()
        out = capsys.readouterr().out
        assert "ALERT rank 2 segment 8" in out
        assert f"streamed {monitor_trace.num_events} events" in out

    def test_follow_rejects_binary(self, tmp_path, capsys):
        assert main(["monitor", str(tmp_path / "mon.rpt"), "--follow"]) == 2
        assert "jsonl" in capsys.readouterr().err

    def test_follow_idle_timeout_ends_without_sentinel(
        self, monitor_trace, tmp_path, capsys
    ):
        # A writer that dies without the end sentinel: the idle timeout
        # must end the follow cleanly with everything streamed so far.
        from repro.trace import write_jsonl

        live = tmp_path / "live.jsonl"
        write_jsonl(monitor_trace, live)  # complete data, no sentinel
        assert main(["monitor", str(live), "--function", "iteration",
                     "--follow", "--idle-timeout", "0.1"]) == 0
        out = capsys.readouterr().out
        assert f"streamed {monitor_trace.num_events} events" in out
        assert "ALERT rank 2 segment 8" in out

    def test_follow_idle_timeout_with_torn_tail_record(
        self, monitor_trace, tmp_path, capsys
    ):
        # Writer killed mid-record: the torn line is ignored, the
        # complete prefix is analyzed.
        from repro.trace import write_jsonl

        full = tmp_path / "full.jsonl"
        write_jsonl(monitor_trace, full)
        text = full.read_text()
        live = tmp_path / "live.jsonl"
        live.write_text(text + text.splitlines()[-1][:37])
        assert main(["monitor", str(live), "--function", "iteration",
                     "--follow", "--idle-timeout", "0.1"]) == 0
        out = capsys.readouterr().out
        assert f"streamed {monitor_trace.num_events} events" in out

    def test_bad_chunk_events(self, trace_path, capsys):
        assert main(["monitor", str(trace_path), "--chunk-events", "0"]) == 2
        assert "chunk-events" in capsys.readouterr().err
