"""Property-based tests of trace transformations and analysis invariants."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.core import compute_sos, segment_trace
from repro.profiles import compute_statistics, replay_trace
from repro.trace import clip_trace, filter_regions, merge_traces, validate_trace
from repro.trace.builder import TraceBuilder
from repro.trace.definitions import Paradigm


@st.composite
def iterative_trace(draw):
    """A small SPMD trace: p ranks, n iterations of compute + MPI."""
    p = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=1, max_value=6))
    # Per-(rank, iteration) compute durations.
    durations = [
        [draw(st.floats(min_value=0.01, max_value=1.0)) for _ in range(n)]
        for _ in range(p)
    ]
    sync = draw(st.floats(min_value=0.0, max_value=0.5))
    tb = TraceBuilder(name="prop")
    tb.region("main")
    tb.region("iter")
    tb.region("calc")
    tb.region("MPI_Allreduce", paradigm=Paradigm.MPI)
    # Iterations synchronise: everyone leaves together.
    starts = [0.0] * p
    for rank in range(p):
        tb.process(rank).enter(0.0, "main")
    t = 0.0
    for it in range(n):
        t_next = t + max(durations[r][it] for r in range(p)) + sync
        for rank in range(p):
            pb = tb.process(rank)
            pb.enter(t, "iter")
            pb.call(t, t + durations[rank][it], "calc")
            pb.call(t + durations[rank][it], t_next, "MPI_Allreduce")
            pb.leave(t_next, "iter")
        t = t_next
    for rank in range(p):
        tb.process(rank).leave(t, "main")
    return tb.freeze(), durations


class TestSOSInvariants:
    @given(iterative_trace())
    @settings(max_examples=50, deadline=None)
    def test_sos_recovers_planted_compute_times(self, data):
        trace, durations = data
        tables = replay_trace(trace)
        segmentation = segment_trace(tables, trace.regions.id_of("iter"))
        sos = compute_sos(trace, segmentation, tables)
        matrix = sos.matrix()
        expected = np.asarray(durations)
        np.testing.assert_allclose(matrix, expected, rtol=1e-9, atol=1e-12)

    @given(iterative_trace())
    @settings(max_examples=30, deadline=None)
    def test_sos_bounded_by_duration(self, data):
        trace, _durations = data
        tables = replay_trace(trace)
        segmentation = segment_trace(tables, trace.regions.id_of("iter"))
        sos = compute_sos(trace, segmentation, tables)
        for rank in sos.ranks:
            r = sos[rank]
            assert np.all(r.sos <= r.duration + 1e-12)
            assert np.all(r.sos >= -1e-12)
            assert np.all(r.sync_time >= -1e-12)

    @given(iterative_trace())
    @settings(max_examples=30, deadline=None)
    def test_durations_identical_across_ranks(self, data):
        """The synchronized construction makes plain durations equal —
        the property that motivates SOS in the first place."""
        trace, _durations = data
        tables = replay_trace(trace)
        segmentation = segment_trace(tables, trace.regions.id_of("iter"))
        matrix = segmentation.durations_matrix()
        for col in range(matrix.shape[1]):
            assert np.allclose(matrix[:, col], matrix[0, col])


class TestClipInvariants:
    @given(
        iterative_trace(),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_clip_always_wellformed(self, data, f0, f1):
        trace, _ = data
        lo, hi = sorted((f0, f1))
        t0 = trace.t_min + lo * trace.duration
        t1 = trace.t_min + hi * trace.duration
        assume(t1 > t0)
        clipped = clip_trace(trace, t0, t1)
        report = validate_trace(clipped, allow_empty_streams=True)
        assert report.ok

    @given(iterative_trace(), st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=30, deadline=None)
    def test_clip_total_time_bounded_by_window(self, data, frac):
        trace, _ = data
        t1 = trace.t_min + frac * trace.duration
        clipped = clip_trace(trace, trace.t_min, t1)
        stats = compute_statistics(clipped)
        window = t1 - trace.t_min
        main_id = clipped.regions.id_of("main")
        assert stats.inclusive_sum[main_id] <= window * trace.num_processes + 1e-9


class TestFilterInvariants:
    @given(iterative_trace(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_filter_any_single_region_stays_valid(self, data, drop_id):
        trace, _ = data
        filtered = filter_regions(trace, lambda r: r.id != drop_id)
        assert validate_trace(filtered, allow_empty_streams=True).ok
        stats = compute_statistics(filtered)
        assert stats.count[drop_id] == 0

    @given(iterative_trace())
    @settings(max_examples=20, deadline=None)
    def test_filter_preserves_other_regions_counts(self, data):
        trace, _ = data
        before = compute_statistics(trace)
        filtered = filter_regions(trace, lambda r: r.name != "calc")
        after = compute_statistics(filtered)
        iter_id = trace.regions.id_of("iter")
        assert after.count[iter_id] == before.count[iter_id]


class TestMergeInvariants:
    @given(iterative_trace(), iterative_trace())
    @settings(max_examples=25, deadline=None)
    def test_merge_shifted_ranks(self, a_data, b_data):
        a, _ = a_data
        b, _ = b_data
        # Shift b's ranks above a's to keep them disjoint.
        shift = max(a.ranks) + 1
        tb = TraceBuilder(name="b-shifted")
        for region in b.regions:
            tb.regions.register(region.name, paradigm=region.paradigm,
                                role=region.role)
        shifted = merge_traces([a]) if False else None
        from repro.trace import Location, Trace

        b2 = Trace(regions=b.regions, metrics=b.metrics, name="b2")
        for proc in b.processes():
            b2.add_process(
                Location(proc.location.id + shift, proc.location.name),
                proc.events,
            )
        merged = merge_traces([a, b2])
        assert validate_trace(merged).ok
        assert merged.num_events == a.num_events + b.num_events
        # Aggregated statistics add up.
        sa = compute_statistics(a)
        sb = compute_statistics(b)
        sm = compute_statistics(merged)
        for name in ("main", "iter", "calc"):
            rid = merged.regions.id_of(name)
            assert sm.count[rid] == (
                sa.count[a.regions.id_of(name)]
                + sb.count[b.regions.id_of(name)]
            )
