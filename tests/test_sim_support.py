"""Tests for simulator support modules: network, noise, counters, program."""

import numpy as np
import pytest

from repro.sim import ops
from repro.sim.countermodel import CounterSet, PAPI_TOT_CYC
from repro.sim.network import NetworkModel
from repro.sim.noise import (
    CompositeNoise,
    GaussianJitter,
    NoNoise,
    ScheduledInterruptions,
)
from repro.sim.program import grid_coords, grid_rank, halo_exchange, neighbors_2d


class TestNetworkModel:
    def test_transfer_time(self):
        net = NetworkModel(latency=1e-6, bandwidth=1e9)
        assert net.transfer_time(0) == 1e-6
        assert net.transfer_time(1000) == pytest.approx(2e-6)

    def test_eager_threshold(self):
        net = NetworkModel(eager_threshold=100)
        assert net.is_eager(100)
        assert not net.is_eager(101)

    def test_collective_costs_grow_with_p(self):
        net = NetworkModel()
        assert net.barrier_cost(64) > net.barrier_cost(2)
        assert net.allreduce_cost(1024, 64) > net.allreduce_cost(1024, 4)
        assert net.alltoall_cost(1024, 64) > net.allgather_cost(1024, 2)

    def test_collective_costs_grow_with_size(self):
        net = NetworkModel()
        assert net.bcast_cost(1 << 20, 8) > net.bcast_cost(8, 8)
        assert net.reduce_cost(1 << 20, 8) > net.reduce_cost(8, 8)

    def test_minimum_one_round(self):
        net = NetworkModel()
        assert net.barrier_cost(1) > 0


class TestNoiseModels:
    def test_no_noise(self):
        assert NoNoise().interruption(0, 1.0, 5.0) == 0.0

    def test_gaussian_jitter_deterministic(self):
        a = GaussianJitter(sigma=0.1, seed=1)
        b = GaussianJitter(sigma=0.1, seed=1)
        assert a.interruption(3, 2.5, 1.0) == b.interruption(3, 2.5, 1.0)

    def test_gaussian_jitter_varies_with_inputs(self):
        noise = GaussianJitter(sigma=0.1, seed=1)
        values = {
            noise.interruption(rank, t, 1.0)
            for rank in range(4)
            for t in (0.1, 0.2, 0.3)
        }
        assert len(values) > 6

    def test_gaussian_jitter_nonnegative(self):
        noise = GaussianJitter(sigma=0.5, seed=9)
        for t in np.linspace(0, 10, 50):
            assert noise.interruption(0, float(t), 1.0) >= 0.0

    def test_gaussian_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            GaussianJitter(sigma=-0.1)

    def test_scheduled_interruptions(self):
        noise = ScheduledInterruptions(events=((2, 1.0, 2.0, 0.5),))
        assert noise.interruption(2, 1.5, 1.0) == 0.5
        assert noise.interruption(2, 2.5, 1.0) == 0.0  # outside window
        assert noise.interruption(1, 1.5, 1.0) == 0.0  # other rank

    def test_scheduled_multiple_windows_accumulate(self):
        noise = ScheduledInterruptions(
            events=((0, 0.0, 10.0, 0.1), (0, 0.0, 10.0, 0.2))
        )
        assert noise.interruption(0, 5.0, 1.0) == pytest.approx(0.3)

    def test_composite(self):
        noise = CompositeNoise(
            models=(
                ScheduledInterruptions(events=((0, 0.0, 1.0, 0.5),)),
                NoNoise(),
            )
        )
        assert noise.interruption(0, 0.5, 1.0) == 0.5


class TestCounterSpecs:
    def test_cycles_spec(self):
        spec = CounterSet.cycles(frequency_hz=2e9)
        assert spec.name == PAPI_TOT_CYC
        assert spec.increment(0, 0.5) == 1e9

    def test_fpu_spec_hot_ranks(self):
        spec = CounterSet.fpu_exceptions(base_rate=10.0, hot_ranks={3: 1e6})
        assert spec.increment(0, 1.0) == 10.0
        assert spec.increment(3, 1.0) == 1e6

    def test_spec_without_rate(self):
        from repro.sim.countermodel import CounterSpec

        assert CounterSpec(name="X").increment(0, 1.0) == 0.0


class TestGridTopology:
    def test_coords_roundtrip(self):
        for rank in range(12):
            col, row = grid_coords(rank, 4, 3)
            assert grid_rank(col, row, 4, 3) == rank

    def test_coords_out_of_range(self):
        with pytest.raises(ValueError):
            grid_coords(12, 4, 3)
        with pytest.raises(ValueError):
            grid_rank(4, 0, 4, 3)

    def test_interior_neighbors(self):
        nbrs = neighbors_2d(5, 4, 3)  # (1,1) in a 4x3 grid
        assert nbrs == [4, 6, 1, 9]

    def test_corner_neighbors(self):
        assert neighbors_2d(0, 4, 3) == [1, 4]

    def test_periodic_neighbors(self):
        nbrs = neighbors_2d(0, 4, 3, periodic=True)
        assert sorted(nbrs) == [1, 3, 4, 8]

    def test_halo_exchange_ops(self):
        gen = halo_exchange(0, [1, 2], size=64, tag=5)
        first = next(gen)
        assert isinstance(first, ops.Enter)
        op = gen.send(None)
        assert isinstance(op, ops.Irecv) and op.source == 1
        op = gen.send(ops.Request(0, "recv", 1, 64, 5))
        assert isinstance(op, ops.Irecv) and op.source == 2
        op = gen.send(ops.Request(0, "recv", 2, 64, 5))
        assert isinstance(op, ops.Isend) and op.dest == 1

    def test_halo_exchange_runs_in_engine(self):
        from repro.sim.engine import simulate

        def program(rank, size):
            yield ops.Enter("main")
            yield from halo_exchange(
                rank, neighbors_2d(rank, 2, 2), size=128, tag=1
            )
            yield ops.Leave("main")

        result = simulate(4, program)
        from repro.trace import validate_trace

        assert validate_trace(result.trace).ok
        assert result.messages == 8

    def test_halo_exchange_no_region(self):
        gen = halo_exchange(0, [1], size=8, tag=0, region=None)
        op = next(gen)
        assert isinstance(op, ops.Irecv)
