"""Differential suite: sharded analysis must equal unsharded, bitwise.

The sharded engine's contract is *exact* reproduction — not "close
enough" — because artifact cache keys and golden snapshots are shared
between the two paths.  Every bundled workload scenario is analyzed
unsharded and with several shard counts (including counts that do not
divide the rank count) and every intermediate product is compared with
``np.array_equal``.  A second block proves the streaming analyzer is
batch-equivalent across chunk boundaries that split an invocation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import analyze_trace, compute_sos, segment_trace
from repro.core.session import AnalysisSession
from repro.core.streaming import StreamingAnalyzer
from repro.profiles.replay import replay_trace
from repro.trace import write_binary, write_jsonl

SHARD_COUNTS = (1, 2, 3, 7)

_STAT_COLUMNS = (
    "count",
    "inclusive_sum",
    "exclusive_sum",
    "inclusive_min",
    "inclusive_max",
)


def _scenario_cosmo():
    from repro.sim.workloads import cosmo_specs

    return cosmo_specs.generate(processes=9, iterations=8)


def _scenario_fd4():
    from repro.sim.workloads import cosmo_specs_fd4

    return cosmo_specs_fd4.generate(processes=12, iterations=6)


def _scenario_wrf():
    from repro.sim.workloads import wrf

    return wrf.generate(processes=9, iterations=6)


def _scenario_hybrid():
    from repro.sim.workloads import hybrid_openmp

    return hybrid_openmp.generate(ranks=6, iterations=8)


def _scenario_synthetic():
    from repro.sim.workloads.synthetic import SyntheticConfig, generate

    return generate(
        SyntheticConfig(
            ranks=8,
            iterations=12,
            base_compute=0.01,
            slow_ranks={5: 1.6},
            outliers={(2, 7): 0.05},
            seed=3,
        )
    )


SCENARIOS = {
    "cosmo_specs": _scenario_cosmo,
    "cosmo_specs_fd4": _scenario_fd4,
    "wrf": _scenario_wrf,
    "hybrid_openmp": _scenario_hybrid,
    "synthetic": _scenario_synthetic,
}


@pytest.fixture(scope="module", params=sorted(SCENARIOS))
def scenario(request):
    """(name, trace, unsharded reference analysis) per workload."""
    trace = SCENARIOS[request.param]()
    return request.param, trace, analyze_trace(trace)


def assert_identical_analysis(reference, candidate):
    """Every product of two analyses must match bitwise."""
    assert candidate.dominant_name == reference.dominant_name
    assert candidate.selection.region == reference.selection.region

    for col in _STAT_COLUMNS:
        assert np.array_equal(
            getattr(candidate.profile.stats, col),
            getattr(reference.profile.stats, col),
        ), f"profile column {col} differs"

    assert candidate.sos.ranks == reference.sos.ranks
    for rank in reference.sos.ranks:
        ref, got = reference.sos[rank], candidate.sos[rank]
        for arr in ("duration", "sync_time", "sos"):
            assert np.array_equal(getattr(got, arr), getattr(ref, arr)), (
                f"rank {rank} {arr} differs"
            )
        ref_seg = reference.segmentation[rank]
        got_seg = candidate.segmentation[rank]
        for arr in ("t_start", "t_stop", "invocation_row"):
            assert np.array_equal(
                getattr(got_seg, arr), getattr(ref_seg, arr)
            ), f"rank {rank} segment {arr} differs"

    ref_heat, ref_edges = reference.heat_matrix(bins=64)
    got_heat, got_edges = candidate.heat_matrix(bins=64)
    assert np.array_equal(got_edges, ref_edges)
    assert np.array_equal(got_heat, ref_heat, equal_nan=True)

    ref_imb, got_imb = reference.imbalance, candidate.imbalance
    assert got_imb.imbalance_pct == ref_imb.imbalance_pct
    assert [(h.rank, h.zscore) for h in got_imb.hot_ranks] == [
        (h.rank, h.zscore) for h in ref_imb.hot_ranks
    ]
    assert len(got_imb.hot_segments) == len(ref_imb.hot_segments)

    for trend_attr in ("trend", "duration_trend"):
        ref_t = getattr(reference, trend_attr)
        got_t = getattr(candidate, trend_attr)
        assert got_t.slope == ref_t.slope
        assert got_t.p_value == ref_t.p_value


class TestShardedEqualsUnsharded:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_every_workload(self, scenario, shards):
        name, trace, reference = scenario
        candidate = AnalysisSession(trace, shards=shards).analysis()
        assert_identical_analysis(reference, candidate)

    def test_memory_bound_path(self, scenario):
        name, trace, reference = scenario
        total_events = sum(len(trace.events_of(r)) for r in trace.ranks)
        # Budget that forces roughly four shards.
        from repro.core.shard import BYTES_PER_EVENT

        budget_mb = total_events * BYTES_PER_EVENT / 4 / 1e6
        session = AnalysisSession(trace, max_memory_mb=budget_mb)
        assert session._shard_engine().plan.num_shards > 1
        assert_identical_analysis(reference, session.analysis())

    def test_replay_tables_identical(self, scenario):
        name, trace, reference = scenario
        session = AnalysisSession(trace, shards=3)
        direct = replay_trace(trace)
        for rank, table in session.replay().items():
            for col in ("region", "t_enter", "t_leave", "depth", "parent"):
                assert np.array_equal(
                    getattr(table, col), getattr(direct[rank], col)
                )

    def test_fingerprint_parity(self, scenario):
        name, trace, reference = scenario
        from repro.trace.fingerprint import fingerprint_trace

        session = AnalysisSession(trace, shards=2)
        assert (
            session.fingerprint.hexdigest
            == fingerprint_trace(trace).hexdigest
        )


class TestPathBasedSharding:
    """File-backed sharded sessions: workers read only their ranks."""

    @pytest.fixture(scope="class")
    def on_disk(self, tmp_path_factory):
        trace = _scenario_cosmo()
        root = tmp_path_factory.mktemp("traces")
        rpt = root / "run.rpt"
        jsonl = root / "run.jsonl"
        write_binary(trace, rpt)
        write_jsonl(trace, jsonl)
        return trace, analyze_trace(trace), rpt, jsonl

    @pytest.mark.parametrize("fmt", ["rpt", "jsonl"])
    def test_path_session_matches(self, on_disk, fmt, monkeypatch):
        trace, reference, rpt, jsonl = on_disk
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "1")
        path = rpt if fmt == "rpt" else jsonl
        session = AnalysisSession(None, source_path=path, shards=3)
        assert_identical_analysis(reference, session.analysis())

    def test_process_pool_workers(self, on_disk, monkeypatch):
        trace, reference, rpt, _ = on_disk
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
        session = AnalysisSession(None, source_path=rpt, shards=2)
        assert_identical_analysis(reference, session.analysis())

    def test_warm_cache_crosses_modes(self, on_disk, tmp_path, monkeypatch):
        trace, reference, rpt, _ = on_disk
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "1")
        cache = tmp_path / "cache"
        cold = AnalysisSession(None, source_path=rpt, shards=3,
                               cache_dir=cache)
        assert_identical_analysis(reference, cold.analysis())
        # Unsharded warm session reuses the shard workers' spill.
        warm = AnalysisSession(trace, cache_dir=cache)
        assert_identical_analysis(reference, warm.analysis())
        assert warm.stats.computed.get("replay", 0) == 0
        assert warm.stats.disk_hits.get("replay") == len(trace.ranks)


class TestHypothesisTraces:
    """Random synthetic configurations keep the differential property."""

    @given(
        ranks=st.integers(min_value=2, max_value=9),
        iterations=st.integers(min_value=3, max_value=10),
        seed=st.integers(min_value=0, max_value=2**16),
        shards=st.integers(min_value=1, max_value=5),
        slow=st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_synthetic(self, ranks, iterations, seed, shards, slow):
        from repro.sim.workloads.synthetic import SyntheticConfig, generate

        config = SyntheticConfig(
            ranks=ranks,
            iterations=iterations,
            base_compute=0.01,
            slow_ranks={ranks - 1: 1.5} if slow else {},
            seed=seed,
        )
        trace = generate(config)
        reference = analyze_trace(trace)
        candidate = AnalysisSession(trace, shards=shards).analysis()
        assert_identical_analysis(reference, candidate)


class TestFusedEqualsLegacy:
    """The fused kernel's products equal the staged pipeline's, bitwise.

    ``fused_bootstrap`` replaces three separate passes (validate,
    match_invocations, per-rank statistics) with one; this class pins
    the identity the rest of the suite assumes.
    """

    def test_tables_partials_report(self, scenario):
        from repro.core.fused import fused_bootstrap
        from repro.profiles.stats import rank_statistics_arrays
        from repro.trace.validate import validate_trace

        name, trace, reference = scenario
        boot = fused_bootstrap(trace)

        legacy_report = validate_trace(trace)
        key = lambda i: (i.rank, i.code, i.message, i.position, i.time)
        assert [key(i) for i in boot.report.issues] == [
            key(i) for i in legacy_report.issues
        ]

        legacy_tables = replay_trace(trace)
        n_regions = len(trace.regions)
        assert sorted(boot.tables) == sorted(legacy_tables)
        for rank in trace.ranks:
            for col in ("region", "t_enter", "t_leave", "depth", "parent"):
                assert np.array_equal(
                    getattr(boot.tables[rank], col),
                    getattr(legacy_tables[rank], col),
                ), f"rank {rank} table column {col} differs"
            legacy_partial = rank_statistics_arrays(
                legacy_tables[rank], n_regions
            )
            assert sorted(boot.partials[rank]) == sorted(legacy_partial)
            for stat, want in legacy_partial.items():
                assert np.array_equal(boot.partials[rank][stat], want), (
                    f"rank {rank} partial {stat} differs"
                )

    def test_validate_false_matches_plain_replay(self, scenario):
        from repro.core.fused import fused_bootstrap

        name, trace, reference = scenario
        boot = fused_bootstrap(trace, validate=False)
        assert not boot.report.issues
        legacy_tables = replay_trace(trace)
        for rank in trace.ranks:
            for col in ("region", "t_enter", "t_leave", "depth", "parent"):
                assert np.array_equal(
                    getattr(boot.tables[rank], col),
                    getattr(legacy_tables[rank], col),
                )

    @staticmethod
    def _trace_with_p2p_only_rank():
        """Rank 0 replays normally; rank 1 holds only SEND/RECV/METRIC
        events — valid per the lint rules, but with nothing to pair."""
        from repro.trace import Location, Trace
        from repro.trace.events import EventKind, EventListBuilder

        trace = Trace(name="p2p-only-rank")
        trace.regions.register("step")
        trace.metrics.register("flops")
        b0 = EventListBuilder()
        for i in range(10):
            b0.append(float(i), EventKind.ENTER, ref=0)
            b0.send(i + 0.4, partner=1, size=8, tag=i)
            b0.append(i + 0.9, EventKind.LEAVE, ref=0)
        trace.add_process(Location(0, "P0"), b0.freeze())
        b1 = EventListBuilder()
        for i in range(10):
            b1.recv(i + 0.5, partner=0, size=8, tag=i)
            b1.metric(i + 0.6, metric=0, value=float(i))
        trace.add_process(Location(1, "P1"), b1.freeze())
        return trace

    def test_rank_without_enter_leave_events(self):
        """A clean rank with zero ENTER/LEAVE events replays to an
        empty table, as on the legacy path (regression: fused_bootstrap
        treated it as unbalanced and skipped it without diagnostics, so
        AnalysisSession and the shard workers KeyError'd on a trace the
        staged pipeline analyzed fine)."""
        from repro.core.fused import fused_bootstrap

        trace = self._trace_with_p2p_only_rank()
        boot = fused_bootstrap(trace)
        assert boot.report.ok
        legacy_tables = replay_trace(trace)
        assert sorted(boot.tables) == sorted(legacy_tables) == [0, 1]
        assert len(boot.tables[1].region) == 0
        assert len(legacy_tables[1].region) == 0

        reference = analyze_trace(trace)
        assert_identical_analysis(reference, AnalysisSession(trace).analysis())
        for shards in SHARD_COUNTS:
            assert_identical_analysis(
                reference, AnalysisSession(trace, shards=shards).analysis()
            )

    def test_empty_stream_allowed_yields_empty_table(self):
        """With allow_empty_streams=True a genuinely empty stream gets
        an empty table/partial rather than being silently dropped."""
        from repro.core.fused import fused_bootstrap
        from repro.trace import Location
        from repro.trace.events import EventList

        trace = self._trace_with_p2p_only_rank()
        trace.add_process(Location(2, "P2"), EventList.empty())
        boot = fused_bootstrap(trace, allow_empty_streams=True)
        assert boot.report.ok
        assert sorted(boot.tables) == [0, 1, 2]
        assert len(boot.tables[2].region) == 0
        assert sorted(boot.partials) == [0, 1, 2]


class TestFormatPathParity:
    """v1-zlib and v2-mmap files yield identical analysis artifacts.

    The acceptance contract for the ``.rpt`` v2 fast path: the
    zero-copy mmap read path must be an implementation detail, never a
    semantic one — fingerprints, statistics, SOS matrices and heat
    grids match the v1 decompress-and-copy path bitwise for every
    shard count, with and without mmap available.
    """

    @pytest.fixture(scope="class")
    def format_pair(self, tmp_path_factory):
        trace = _scenario_synthetic()
        root = tmp_path_factory.mktemp("formats")
        v1, v2 = root / "run-v1.rpt", root / "run-v2.rpt"
        write_binary(trace, v1, version=1)
        write_binary(trace, v2, version=2, codec="raw")
        return analyze_trace(trace), v1, v2

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("fmt", ["v1", "v2"])
    def test_bitwise_identical_across_formats(
        self, format_pair, fmt, shards, monkeypatch
    ):
        reference, v1, v2 = format_pair
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "1")
        path = v1 if fmt == "v1" else v2
        session = AnalysisSession(None, source_path=path, shards=shards)
        assert_identical_analysis(reference, session.analysis())

    def test_fingerprints_match_across_formats(self, format_pair):
        from repro.trace.fingerprint import fingerprint_trace
        from repro.trace.reader import TraceIndex

        reference, v1, v2 = format_pair
        a = fingerprint_trace(TraceIndex(v1).load())
        b = fingerprint_trace(TraceIndex(v2).load())
        assert a.hexdigest == b.hexdigest
        index = TraceIndex(v2)
        for rank in index.ranks:
            assert index.rank_digest(rank) == TraceIndex(v1).rank_digest(rank)

    def test_no_mmap_fallback_identical(self, format_pair, monkeypatch):
        reference, v1, v2 = format_pair
        monkeypatch.setenv("REPRO_NO_MMAP", "1")
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "1")
        session = AnalysisSession(None, source_path=v2, shards=2)
        assert_identical_analysis(reference, session.analysis())


class TestStreamingBatchEquivalence:
    """Chunk boundaries that split an invocation must not matter."""

    @pytest.fixture(scope="class")
    def trace(self):
        return _scenario_synthetic()

    def _series(self, trace, chunk):
        analyzer = StreamingAnalyzer(
            trace.regions, trace.num_processes, dominant="iteration"
        )
        for rank in trace.ranks:
            events = trace.events_of(rank)
            for i in range(0, len(events), chunk):
                analyzer.feed(rank, events[i : i + chunk])
        return {r: analyzer.sos_series(r) for r in trace.ranks}

    @pytest.mark.parametrize("chunk", [1, 3, 7])
    def test_odd_chunks_match_single_feed(self, trace, chunk):
        # Chunks of 1/3/7 events are far smaller than one invocation
        # (enter + leave + nested calls), so every boundary splits one.
        whole = self._series(trace, chunk=10**9)
        chunked = self._series(trace, chunk=chunk)
        for rank in trace.ranks:
            np.testing.assert_array_equal(chunked[rank], whole[rank])

    def test_matches_offline_compute_sos(self, trace):
        tables = replay_trace(trace)
        region = trace.regions.id_of("iteration")
        segmentation = segment_trace(tables, region)
        offline = compute_sos(trace, segmentation, tables)
        chunked = self._series(trace, chunk=5)
        for rank in trace.ranks:
            np.testing.assert_allclose(chunked[rank], offline[rank].sos)

    @given(
        boundaries=st.lists(
            st.integers(min_value=1, max_value=5000),
            min_size=0,
            max_size=24,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_random_chunk_boundaries(self, trace, boundaries):
        """Fragmenting the stream at arbitrary positions never changes
        a single bit of the streamed series (satellite of the cursor
        engine PR: chunking is a transport detail)."""
        whole = self._series(trace, chunk=10**9)
        analyzer = StreamingAnalyzer(
            trace.regions, trace.num_processes, dominant="iteration"
        )
        for rank in trace.ranks:
            events = trace.events_of(rank)
            cuts = sorted({b % (len(events) + 1) for b in boundaries})
            prev = 0
            for cut in cuts + [len(events)]:
                analyzer.feed(rank, events[prev:cut])  # may be empty
                prev = cut
        for rank in trace.ranks:
            np.testing.assert_array_equal(
                analyzer.sos_series(rank), whole[rank]
            )


CURSOR_CHUNKS = (1, 4096, None)  # one event, a page, whole file


class TestIncrementalEqualsFused:
    """The cursor-driven kernel equals the batch kernel, bitwise.

    ``incremental_bootstrap`` consumes chunked, column-projected
    batches pulled from a file; ``fused_bootstrap`` sees each rank as
    one slab.  On a completed trace the two must be indistinguishable
    — same tables, same statistics partials, same diagnostics — for
    every golden workload, both ``.rpt`` container versions, and chunk
    sizes from one event to the whole file.
    """

    @pytest.mark.parametrize("version", [1, 2])
    @pytest.mark.parametrize("chunk", CURSOR_CHUNKS)
    def test_cursor_kernel_matches_fused(
        self, scenario, chunk, version, tmp_path
    ):
        from repro.core.fused import fused_bootstrap
        from repro.core.incremental import incremental_bootstrap
        from repro.trace.reader import TraceIndex

        name, trace, reference = scenario
        path = tmp_path / f"{name}-v{version}.rpt"
        kwargs = {"codec": "raw"} if version == 2 else {}
        write_binary(trace, path, version=version, **kwargs)
        index = TraceIndex(path)
        got = incremental_bootstrap(index.cursor(chunk_events=chunk))
        want = fused_bootstrap(index.load())

        key = lambda i: (i.rank, i.code, i.message, i.position, i.time)
        assert [key(i) for i in got.report.issues] == [
            key(i) for i in want.report.issues
        ]
        assert sorted(got.tables) == sorted(want.tables)
        for rank in want.tables:
            for col in ("region", "t_enter", "t_leave", "depth", "parent"):
                assert np.array_equal(
                    getattr(got.tables[rank], col),
                    getattr(want.tables[rank], col),
                ), f"rank {rank} table column {col} differs"
            for stat, arr in want.partials[rank].items():
                assert np.array_equal(got.partials[rank][stat], arr), (
                    f"rank {rank} partial {stat} differs"
                )


class TestChunkedShardWorkers:
    """Worker cursor batch size never leaks into analysis products."""

    _files: dict = {}

    @pytest.fixture()
    def trace_file(self, scenario, tmp_path_factory):
        name, trace, reference = scenario
        if name not in self._files:
            path = tmp_path_factory.mktemp("chunked") / f"{name}.rpt"
            write_binary(trace, path, version=2, codec="raw")
            self._files[name] = path
        return reference, self._files[name]

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("chunk", CURSOR_CHUNKS)
    def test_all_workloads(self, trace_file, shards, chunk, monkeypatch):
        reference, path = trace_file
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "1")
        session = AnalysisSession(
            None, source_path=path, shards=shards, chunk_events=chunk
        )
        assert_identical_analysis(reference, session.analysis())
