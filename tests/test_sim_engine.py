"""Tests for the discrete-event MPI simulator engine."""

import pytest

from repro.profiles import profile_trace, replay_trace
from repro.sim import ops
from repro.sim.countermodel import CounterSet, CounterSpec, PAPI_TOT_CYC
from repro.sim.engine import DeadlockError, Simulator, simulate
from repro.sim.network import NetworkModel
from repro.trace import validate_trace
from repro.trace.definitions import MetricMode

FAST_NET = NetworkModel(latency=1e-3, bandwidth=1e6, eager_threshold=1000)


def run(size, program, **kwargs):
    return simulate(size, program, **kwargs)


class TestComputeAndRegions:
    def test_single_rank_regions(self):
        def program(rank, size):
            yield ops.Enter("main")
            yield ops.Compute(1.0, region="work")
            yield ops.Elapse(0.5)
            yield ops.Leave("main")

        result = run(1, program)
        assert result.makespan == 1.5
        stats = profile_trace(result.trace).stats
        assert stats.of("main").inclusive_sum == 1.5
        assert stats.of("work").inclusive_sum == 1.0

    def test_compute_without_region(self):
        def program(rank, size):
            yield ops.Enter("main")
            yield ops.Compute(2.0)
            yield ops.Leave("main")

        result = run(1, program)
        assert result.makespan == 2.0

    def test_interruption_extends_wall_not_counters(self):
        def program(rank, size):
            yield ops.Compute(1.0, region="work", interruption=0.5)

        counters = CounterSet((CounterSet.cycles(frequency_hz=1e9),))
        result = run(1, program, counters=counters)
        assert result.makespan == 1.5
        from repro.core.metrics import per_rank_metric_total

        cyc = per_rank_metric_total(result.trace, PAPI_TOT_CYC)
        assert cyc[0] == 1e9  # only active time counts

    def test_mismatched_leave_raises(self):
        def program(rank, size):
            yield ops.Enter("a")
            yield ops.Leave("b")

        with pytest.raises(ValueError, match="does not match"):
            run(1, program)

    def test_non_op_yield_raises(self):
        def program(rank, size):
            yield "banana"

        with pytest.raises(TypeError, match="non-op"):
            run(1, program)

    def test_trace_is_wellformed(self):
        def program(rank, size):
            yield ops.Enter("main")
            yield ops.Compute(0.1, region="w")
            yield ops.Barrier()
            yield ops.Leave("main")

        result = run(3, program)
        assert validate_trace(result.trace).ok


class TestCollectives:
    def test_barrier_synchronises(self):
        def program(rank, size):
            yield ops.Compute(1.0 * (rank + 1))
            yield ops.Barrier()

        result = run(3, program, network=FAST_NET)
        # All ranks leave the barrier together, after the slowest.
        times = list(result.end_times.values())
        assert len(set(times)) == 1
        assert times[0] == pytest.approx(3.0 + FAST_NET.barrier_cost(3))

    def test_fast_rank_waits_inside_barrier(self):
        def program(rank, size):
            yield ops.Compute(1.0 if rank else 3.0)
            yield ops.Barrier()

        result = run(2, program, network=FAST_NET)
        tables = replay_trace(result.trace)
        barrier = result.trace.regions.id_of("MPI_Barrier")
        t0 = tables[0].for_region(barrier)
        t1 = tables[1].for_region(barrier)
        assert t1.inclusive[0] > t0.inclusive[0] + 1.5

    def test_allreduce_cost_scales(self):
        def program(rank, size):
            yield ops.Allreduce(size=1000)

        r2 = run(2, program, network=FAST_NET)
        r8 = run(8, program, network=FAST_NET)
        assert r8.makespan > r2.makespan

    def test_collective_mismatch_detected(self):
        def program(rank, size):
            if rank == 0:
                yield ops.Barrier()
            else:
                yield ops.Allreduce(size=8)

        with pytest.raises(RuntimeError, match="collective mismatch"):
            run(2, program)

    def test_sub_communicator(self):
        comm = ops.Comm(id=1, ranks=(0, 1))

        def program(rank, size):
            yield ops.Compute(0.1 * (rank + 1))
            if rank < 2:
                yield ops.Barrier(comm=comm)

        result = run(3, program, network=FAST_NET)
        # Rank 2 never synchronises.
        assert result.end_times[2] == pytest.approx(0.3)
        assert result.end_times[0] == result.end_times[1]

    def test_collective_on_foreign_comm_raises(self):
        comm = ops.Comm(id=1, ranks=(0,))

        def program(rank, size):
            yield ops.Barrier(comm=comm)

        with pytest.raises(ValueError, match="does not belong"):
            run(2, program)

    def test_collectives_counted(self):
        def program(rank, size):
            yield ops.Barrier()
            yield ops.Allreduce(size=8)

        assert run(4, program).collectives == 2


class TestPointToPoint:
    def test_blocking_send_recv(self):
        def program(rank, size):
            if rank == 0:
                yield ops.Compute(1.0)
                yield ops.Send(1, size=100, tag=5)
            else:
                yield ops.Recv(0, size=100, tag=5)

        result = run(2, program, network=FAST_NET)
        # Receiver leaves after message arrival: 1.0 + latency + size/bw.
        expected = 1.0 + FAST_NET.transfer_time(100) + FAST_NET.recv_overhead
        assert result.end_times[1] == pytest.approx(expected)

    def test_recv_posted_before_send(self):
        def program(rank, size):
            if rank == 0:
                yield ops.Recv(1, tag=1)
            else:
                yield ops.Compute(2.0)
                yield ops.Send(0, size=10, tag=1)

        result = run(2, program, network=FAST_NET)
        assert result.end_times[0] > 2.0

    def test_fifo_matching_per_channel(self):
        received = []

        def program(rank, size):
            if rank == 0:
                yield ops.Send(1, size=1, tag=9)
                yield ops.Compute(1.0)
                yield ops.Send(1, size=2, tag=9)
            else:
                yield ops.Recv(0, tag=9)
                yield ops.Recv(0, tag=9)

        result = run(2, program, network=FAST_NET)
        assert validate_trace(result.trace).ok
        # Sizes on the RECV events follow send order.
        from repro.trace.events import EventKind

        ev = result.trace.events_of(1)
        recvs = ev.select(ev.kind == EventKind.RECV)
        assert list(recvs.size) == [1, 2]

    def test_tags_separate_channels(self):
        def program(rank, size):
            if rank == 0:
                yield ops.Send(1, size=1, tag=1)
                yield ops.Send(1, size=2, tag=2)
            else:
                # Receive in reverse tag order: matching is per tag.
                yield ops.Recv(0, tag=2)
                yield ops.Recv(0, tag=1)

        result = run(2, program, network=FAST_NET)
        assert validate_trace(result.trace).ok

    def test_rendezvous_blocks_sender(self):
        def program(rank, size):
            if rank == 0:
                yield ops.Send(1, size=100_000, tag=1)  # above threshold
                yield ops.Compute(0.0)
            else:
                yield ops.Compute(5.0)
                yield ops.Recv(0, size=100_000, tag=1)

        result = run(2, program, network=FAST_NET)
        # Sender cannot complete before the receiver posts at t=5.
        assert result.end_times[0] > 5.0

    def test_eager_send_does_not_block(self):
        def program(rank, size):
            if rank == 0:
                yield ops.Send(1, size=10, tag=1)
                yield ops.Compute(0.0)
            else:
                yield ops.Compute(5.0)
                yield ops.Recv(0, size=10, tag=1)

        result = run(2, program, network=FAST_NET)
        assert result.end_times[0] < 1.0

    def test_isend_irecv_waitall(self):
        def program(rank, size):
            peer = 1 - rank
            r = yield ops.Irecv(peer, size=64, tag=3)
            s = yield ops.Isend(peer, size=64, tag=3)
            yield ops.Waitall([r, s])
            yield ops.Compute(0.1)

        result = run(2, program, network=FAST_NET)
        assert validate_trace(result.trace).ok
        assert result.messages == 2

    def test_wait_single_request(self):
        def program(rank, size):
            if rank == 0:
                req = yield ops.Isend(1, size=10, tag=1)
                yield ops.Wait(req)
            else:
                req = yield ops.Irecv(0, size=10, tag=1)
                yield ops.Wait(req)

        result = run(2, program, network=FAST_NET)
        assert validate_trace(result.trace).ok

    def test_wait_blocks_until_message(self):
        def program(rank, size):
            if rank == 0:
                req = yield ops.Irecv(1, size=10, tag=1)
                yield ops.Wait(req)
            else:
                yield ops.Compute(3.0)
                yield ops.Send(0, size=10, tag=1)

        result = run(2, program, network=FAST_NET)
        assert result.end_times[0] > 3.0

    def test_rendezvous_isend_completion_time(self):
        def program(rank, size):
            if rank == 0:
                req = yield ops.Isend(1, size=500_000, tag=1)
                yield ops.Wait(req)
            else:
                yield ops.Compute(2.0)
                yield ops.Recv(0, size=500_000, tag=1)

        result = run(2, program, network=FAST_NET)
        # Transfer starts at t=2 (recv post), takes 0.5s at 1MB/s.
        assert result.end_times[0] == pytest.approx(2.5, rel=0.01)


class TestDeadlockAndErrors:
    def test_recv_deadlock_detected(self):
        def program(rank, size):
            yield ops.Recv(1 - rank, tag=1)

        with pytest.raises(DeadlockError, match="MPI_Recv"):
            run(2, program)

    def test_collective_deadlock_detected(self):
        def program(rank, size):
            if rank == 0:
                yield ops.Barrier()
            else:
                yield ops.Compute(1.0)
                # rank 1 never reaches the barrier

        with pytest.raises(DeadlockError, match="MPI_Barrier"):
            run(2, program)

    def test_rendezvous_deadlock_detected(self):
        def program(rank, size):
            yield ops.Send(1 - rank, size=10_000_000, tag=1)
            yield ops.Recv(1 - rank, tag=1)

        with pytest.raises(DeadlockError, match="MPI_Send"):
            run(2, program, network=FAST_NET)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Simulator(0, lambda r, s: iter(()))


class TestCountersAndDeterminism:
    def test_explicit_counters(self):
        def program(rank, size):
            yield ops.Compute(1.0, region="w", counters={"FLOPS": 2e9})
            yield ops.Sample("FLOPS")

        result = run(1, program)
        from repro.core.metrics import per_rank_metric_total

        assert per_rank_metric_total(result.trace, "FLOPS")[0] == 2e9

    def test_rate_counters_accumulate(self):
        spec = CounterSpec(
            name="X", mode=MetricMode.ACCUMULATED, rate=lambda r, dt: 10 * dt
        )

        def program(rank, size):
            yield ops.Compute(1.0)
            yield ops.Compute(2.0)

        result = run(1, program, counters=CounterSet((spec,)))
        from repro.core.metrics import per_rank_metric_total

        assert per_rank_metric_total(result.trace, "X")[0] == 30.0

    def test_sample_explicit_value(self):
        def program(rank, size):
            yield ops.Sample("G", value=42.0)

        result = run(1, program)
        from repro.core.metrics import metric_series

        assert metric_series(result.trace, "G")[0].values[0] == 42.0

    def test_duplicate_counter_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CounterSet((CounterSet.cycles(), CounterSet.cycles()))

    def test_determinism(self):
        from repro.sim.noise import GaussianJitter

        def program(rank, size):
            yield ops.Compute(0.5, region="w")
            yield ops.Barrier()

        noise = GaussianJitter(sigma=0.05, seed=42)
        a = run(4, program, noise=noise)
        b = run(4, program, noise=GaussianJitter(sigma=0.05, seed=42))
        for rank in range(4):
            assert a.trace.events_of(rank) == b.trace.events_of(rank)

    def test_different_seeds_differ(self):
        from repro.sim.noise import GaussianJitter

        def program(rank, size):
            yield ops.Compute(0.5, region="w")

        a = run(2, program, noise=GaussianJitter(sigma=0.05, seed=1))
        b = run(2, program, noise=GaussianJitter(sigma=0.05, seed=2))
        assert a.makespan != b.makespan


class TestNewCollectivesAndSendrecv:
    def test_gather_scatter(self):
        def program(rank, size):
            yield ops.Compute(0.01 * (rank + 1))
            yield ops.Gather(size=1024, root=0)
            yield ops.Scatter(size=1024, root=0)

        result = run(4, program, network=FAST_NET)
        assert validate_trace(result.trace).ok
        names = {r.name for r in result.trace.regions}
        assert {"MPI_Gather", "MPI_Scatter"} <= names
        # Synchronizing: all end together.
        assert len(set(result.end_times.values())) == 1

    def test_gather_cost_scales_with_p(self):
        def program(rank, size):
            yield ops.Gather(size=100_000, root=0)

        small = run(2, program, network=FAST_NET)
        large = run(8, program, network=FAST_NET)
        assert large.makespan > small.makespan

    def test_sendrecv_ring_no_deadlock(self):
        def program(rank, size):
            yield ops.Compute(0.1 * (rank + 1))
            yield ops.Sendrecv(
                dest=(rank + 1) % size, source=(rank - 1) % size,
                size=512, tag=1,
            )

        result = run(5, program, network=FAST_NET)
        assert validate_trace(result.trace).ok
        assert result.messages == 5

    def test_sendrecv_blocks_until_message_arrives(self):
        def program(rank, size):
            if rank == 1:
                yield ops.Compute(3.0)
            yield ops.Sendrecv(dest=1 - rank, source=1 - rank, size=64, tag=2)

        result = run(2, program, network=FAST_NET)
        # Rank 0 must wait for rank 1's late send.
        assert result.end_times[0] > 3.0

    def test_sendrecv_rendezvous_sizes(self):
        def program(rank, size):
            yield ops.Sendrecv(
                dest=1 - rank, source=1 - rank, size=500_000, tag=9,
            )

        result = run(2, program, network=FAST_NET)
        assert validate_trace(result.trace).ok
        # Both transfers complete: 0.5s at 1 MB/s plus overheads.
        assert result.makespan >= 0.5

    def test_sendrecv_asymmetric_sizes(self):
        def program(rank, size):
            recv_size = 128 if rank == 0 else 64
            send_size = 64 if rank == 0 else 128
            yield ops.Sendrecv(dest=1 - rank, source=1 - rank,
                               size=send_size, recv_size=recv_size, tag=5)

        result = run(2, program, network=FAST_NET)
        from repro.trace.events import EventKind

        ev0 = result.trace.events_of(0)
        recvs = ev0.select(ev0.kind == EventKind.RECV)
        assert list(recvs.size) == [128]


class TestInputValidation:
    def test_negative_compute_rejected(self):
        def program(rank, size):
            yield ops.Compute(-1.0)

        with pytest.raises(ValueError, match="negative Compute"):
            run(1, program)

    def test_negative_interruption_rejected(self):
        def program(rank, size):
            yield ops.Compute(1.0, interruption=-0.5)

        with pytest.raises(ValueError, match="negative Compute"):
            run(1, program)

    def test_negative_elapse_rejected(self):
        def program(rank, size):
            yield ops.Elapse(-1.0)

        with pytest.raises(ValueError, match="negative Elapse"):
            run(1, program)

    def test_zero_durations_fine(self):
        def program(rank, size):
            yield ops.Compute(0.0)
            yield ops.Elapse(0.0)

        assert run(1, program).makespan == 0.0
