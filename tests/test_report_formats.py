"""Tests for the text report module and small formatting helpers."""

import pytest

from repro.core import analyze_trace
from repro.core.report import _fmt_seconds, format_report, report_dict
from repro.sim.workloads.synthetic import SyntheticConfig, generate


class TestFmtSeconds:
    def test_seconds(self):
        assert _fmt_seconds(2.5) == "2.500 s"

    def test_millis(self):
        assert _fmt_seconds(0.0123) == "12.300 ms"

    def test_micros(self):
        assert _fmt_seconds(4.2e-6) == "4.200 us"

    def test_nonfinite(self):
        assert _fmt_seconds(float("nan")) == "n/a"
        assert _fmt_seconds(float("inf")) == "n/a"


class TestFormatReport:
    @pytest.fixture(scope="class")
    def analysis(self):
        return analyze_trace(
            generate(
                SyntheticConfig(ranks=6, iterations=10, slow_ranks={4: 1.7},
                                outliers={(1, 6): 0.05}, seed=7)
            )
        )

    def test_sections_present(self, analysis):
        text = format_report(analysis)
        for heading in (
            "Performance-variation analysis",
            "Dominant function selection",
            "Segments and SOS-times",
            "Findings",
        ):
            assert heading in text

    def test_candidate_marker(self, analysis):
        text = format_report(analysis)
        assert "-> [0] iteration" in text

    def test_both_finding_kinds(self, analysis):
        text = format_report(analysis)
        assert "hot ranks" in text
        assert "hot segments" in text
        assert "rank 4" in text

    def test_max_rows_truncates(self, analysis):
        text = format_report(analysis, max_rows=1)
        # Only one candidate line printed.
        assert "[1]" not in text

    def test_mpi_share_line(self, analysis):
        assert "MPI time share:" in format_report(analysis)


class TestReportDict:
    def test_schema(self):
        analysis = analyze_trace(
            generate(SyntheticConfig(ranks=4, iterations=6, seed=2))
        )
        d = report_dict(analysis)
        assert set(d) >= {
            "trace",
            "processes",
            "events",
            "duration",
            "mpi_share",
            "dominant",
            "segments",
            "imbalance_pct",
            "trend",
            "hot_ranks",
            "hot_segments",
        }
        assert len(d["segments"]["per_rank_sos_total"]) == 4
        assert isinstance(d["dominant"]["candidates"], list)

    def test_trend_block(self):
        analysis = analyze_trace(
            generate(SyntheticConfig(ranks=4, iterations=20,
                                     trend_per_step=0.05, seed=2))
        )
        d = report_dict(analysis)
        assert d["trend"]["increasing"] is True
        assert d["trend"]["slope"] > 0
