"""Tests for the vectorised stack replay (invocation matching)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.profiles.replay import match_invocations, replay_trace
from repro.trace.builder import TraceBuilder
from repro.trace.events import EventListBuilder


def brute_force(events):
    """Reference implementation with an explicit stack."""
    from repro.trace.events import EventKind

    stack = []
    rows = []
    for i in range(len(events)):
        k = events.kind[i]
        if k == EventKind.ENTER:
            stack.append(i)
        elif k == EventKind.LEAVE:
            j = stack.pop()
            rows.append((j, i))
    rows.sort()
    return rows


class TestMatchInvocations:
    def test_figure1(self, fig1):
        table = match_invocations(fig1.events_of(0))
        assert len(table) == 2
        foo = table.for_region(fig1.regions.id_of("foo"))
        bar = table.for_region(fig1.regions.id_of("bar"))
        assert foo.inclusive[0] == 6.0
        assert foo.exclusive[0] == 4.0
        assert bar.inclusive[0] == 2.0 and bar.exclusive[0] == 2.0
        assert foo.depth[0] == 1 and bar.depth[0] == 2

    def test_parent_links(self, fig1):
        table = match_invocations(fig1.events_of(0))
        # Rows ordered by enter time: foo first, bar second.
        assert table.parent[0] == -1
        assert table.parent[1] == 0

    def test_empty_stream(self):
        table = match_invocations(EventListBuilder().freeze())
        assert len(table) == 0

    def test_metric_events_ignored(self, tiny_trace):
        table = match_invocations(tiny_trace.events_of(0))
        # main + 2*(iter, calc, MPI_Barrier) = 7 invocations
        assert len(table) == 7

    def test_unbalanced_raises(self):
        b = EventListBuilder()
        b.enter(0.0, 0)
        with pytest.raises(ValueError, match="unbalanced"):
            match_invocations(b.freeze())

    def test_excess_leave_raises(self):
        b = EventListBuilder()
        b.enter(0.0, 0)
        b.leave(1.0, 0)
        b.leave(2.0, 0)
        with pytest.raises(ValueError, match="unbalanced"):
            match_invocations(b.freeze())

    def test_mismatched_regions_raise(self):
        b = EventListBuilder()
        b.enter(0.0, 0)
        b.enter(1.0, 1)
        b.leave(2.0, 0)  # crossed
        b.leave(3.0, 1)
        with pytest.raises(ValueError, match="mismatched"):
            match_invocations(b.freeze())

    def test_recursion_outermost_flags(self):
        tb = TraceBuilder()
        tb.region("f")
        p = tb.process(0)
        p.enter(0.0, "f")
        p.enter(1.0, "f")
        p.enter(2.0, "f")
        p.leave(3.0)
        p.leave(4.0)
        p.leave(5.0)
        p.call(6.0, 7.0, "f")
        table = match_invocations(tb.freeze().events_of(0))
        assert len(table) == 4
        # Ordered by enter time: depths 1,2,3 then 1.
        assert list(table.outermost) == [True, False, False, True]

    def test_exclusive_subtracts_all_children(self):
        tb = TraceBuilder()
        for name in ("p", "c1", "c2"):
            tb.region(name)
        proc = tb.process(0)
        proc.enter(0.0, "p")
        proc.call(1.0, 3.0, "c1")
        proc.call(4.0, 9.0, "c2")
        proc.leave(10.0)
        table = match_invocations(tb.freeze().events_of(0))
        parent = table.for_region(0)
        assert parent.inclusive[0] == 10.0
        assert parent.exclusive[0] == pytest.approx(3.0)

    def test_zero_duration_frames(self):
        tb = TraceBuilder()
        tb.region("f")
        p = tb.process(0)
        p.call(1.0, 1.0, "f")
        table = match_invocations(tb.freeze().events_of(0))
        assert table.inclusive[0] == 0.0

    def test_select_remaps_parents(self, fig1):
        table = match_invocations(fig1.events_of(0))
        sub = table.select(np.asarray([False, True]))
        assert len(sub) == 1
        assert sub.parent[0] == -1  # parent dropped -> -1

    def test_enter_leave_indices_point_at_events(self, fig2):
        ev = fig2.events_of(1)
        table = match_invocations(ev)
        from repro.trace.events import EventKind

        assert np.all(ev.kind[table.enter_index] == EventKind.ENTER)
        assert np.all(ev.kind[table.leave_index] == EventKind.LEAVE)
        assert np.all(ev.ref[table.enter_index] == table.region)

    def test_replay_trace_covers_all_ranks(self, fig2):
        tables = replay_trace(fig2)
        assert sorted(tables) == [0, 1, 2]
        assert all(len(t) == 9 for t in tables.values())  # 1+1+3+2+2


@st.composite
def nested_program(draw):
    """Random properly nested enter/leave sequence with random regions."""
    ops = []
    depth = 0
    t = 0.0
    for _ in range(draw(st.integers(min_value=0, max_value=40))):
        t += draw(st.floats(min_value=0.0, max_value=2.0))
        if depth > 0 and draw(st.booleans()):
            ops.append(("leave", t))
            depth -= 1
        else:
            ops.append(("enter", t, draw(st.integers(0, 4))))
            depth += 1
    while depth > 0:
        t += 1.0
        ops.append(("leave", t))
        depth -= 1
    return ops


@given(nested_program())
@settings(max_examples=60, deadline=None)
def test_replay_matches_brute_force(ops):
    b = EventListBuilder()
    stack = []
    for op in ops:
        if op[0] == "enter":
            b.enter(op[1], op[2])
            stack.append(op[2])
        else:
            b.leave(op[1], stack.pop())
    events = b.freeze()
    table = match_invocations(events)
    expected = brute_force(events)
    got = sorted(zip(table.enter_index.tolist(), table.leave_index.tolist()))
    assert got == expected
    # Inclusive >= exclusive >= 0; child sums consistent.
    assert np.all(table.exclusive >= -1e-12)
    assert np.all(table.inclusive + 1e-12 >= table.exclusive)


@given(nested_program())
@settings(max_examples=40, deadline=None)
def test_replay_parent_is_enclosing_frame(ops):
    b = EventListBuilder()
    stack = []
    for op in ops:
        if op[0] == "enter":
            b.enter(op[1], op[2])
            stack.append(op[2])
        else:
            b.leave(op[1], stack.pop())
    table = match_invocations(b.freeze())
    for i in range(len(table)):
        p = table.parent[i]
        if p >= 0:
            assert table.t_enter[p] <= table.t_enter[i]
            assert table.t_leave[p] >= table.t_leave[i]
            assert table.depth[p] == table.depth[i] - 1
