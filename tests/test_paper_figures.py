"""E1-E3: exact reproduction of the paper's illustrative figures."""

import numpy as np

from repro.core import analyze_trace
from repro.paper import (
    FIGURE3_CALC,
    FIGURE3_DURATIONS,
    figure1_trace,
    figure2_trace,
    figure3_trace,
)
from repro.profiles import profile_trace
from repro.trace import validate_trace


class TestFigure1:
    """Inclusive vs. exclusive time (Section IV, Figure 1)."""

    def test_inclusive_time_of_foo_is_6(self):
        stats = profile_trace(figure1_trace()).stats
        assert stats.of("foo").inclusive_sum == 6.0

    def test_exclusive_time_of_foo_is_4(self):
        stats = profile_trace(figure1_trace()).stats
        assert stats.of("foo").exclusive_sum == 4.0

    def test_bar_subcall(self):
        stats = profile_trace(figure1_trace()).stats
        assert stats.of("bar").inclusive_sum == 2.0
        assert stats.of("bar").exclusive_sum == 2.0

    def test_trace_is_valid(self):
        assert validate_trace(figure1_trace()).ok


class TestFigure2:
    """Dominant-function selection (Section IV, Figure 2)."""

    def test_main_has_highest_inclusive_but_loses(self):
        trace = figure2_trace()
        stats = profile_trace(trace).stats
        assert stats.of("main").inclusive_sum == 54.0  # paper: 54 steps
        analysis = analyze_trace(trace)
        assert analysis.dominant_name == "a"

    def test_a_inclusive_and_count_match_paper(self):
        stats = profile_trace(figure2_trace()).stats
        a = stats.of("a")
        assert a.inclusive_sum == 36.0  # paper: 36 time steps
        assert a.count == 9  # paper: nine times on three processes

    def test_main_invocations_equal_process_count(self):
        stats = profile_trace(figure2_trace()).stats
        assert stats.of("main").count == 3

    def test_2p_threshold(self):
        analysis = analyze_trace(figure2_trace())
        assert analysis.selection.min_invocations == 6


class TestFigure3:
    """SOS-time computation (Section V, Figure 3)."""

    def test_dominant_is_a(self):
        analysis = analyze_trace(figure3_trace())
        assert analysis.dominant_name == "a"

    def test_plain_segment_durations_uniform_across_processes(self):
        analysis = analyze_trace(figure3_trace())
        durations = analysis.sos.duration_matrix()
        for it, expected in enumerate(FIGURE3_DURATIONS):
            assert np.allclose(durations[:, it], expected)

    def test_first_iteration_twice_as_slow_as_middle(self):
        """Paper: "The iterations in the middle (duration of 3) are
        twice as fast as the first iteration (duration of 6)"."""
        analysis = analyze_trace(figure3_trace())
        durations = analysis.sos.duration_matrix()
        assert durations[0, 0] == 2 * durations[0, 1]

    def test_sos_values_match_calc_times(self):
        analysis = analyze_trace(figure3_trace())
        sos = analysis.sos.matrix()
        expected = np.asarray(FIGURE3_CALC).T  # (ranks, iterations)
        np.testing.assert_allclose(sos, expected)

    def test_paper_quote_process0_vs_process2(self):
        """Paper: "the SOS-time of Process 2 shows 1 compared to a
        SOS-time of 5 for Process 0, i.e., it highlights the
        computational load imbalance in the first iteration"."""
        analysis = analyze_trace(figure3_trace())
        sos = analysis.sos
        assert sos[2].sos[0] == 1.0
        assert sos[0].sos[0] == 5.0
