"""Property-based tests of the simulator engine.

Random SPMD programs are generated from a small op grammar; for every
program the engine must produce a well-formed trace with physically
sensible timings (no rank finishes before its own compute time;
collectives synchronise; message counts are conserved).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import analyze_trace
from repro.profiles import profile_trace
from repro.sim import ops
from repro.sim.engine import simulate
from repro.sim.network import NetworkModel
from repro.trace import validate_trace
from repro.trace.events import EventKind

NET = NetworkModel(latency=1e-4, bandwidth=1e8, eager_threshold=4096)


@st.composite
def spmd_program(draw):
    """A random SPMD iteration body shared by all ranks.

    Each element is one phase of the iteration; all ranks execute the
    same sequence (with rank-dependent compute times), which guarantees
    deadlock freedom for the blocking collectives.
    """
    phases = draw(
        st.lists(
            st.sampled_from(
                ["compute", "barrier", "allreduce", "ring", "bcast", "elapse"]
            ),
            min_size=1,
            max_size=6,
        )
    )
    iterations = draw(st.integers(min_value=1, max_value=4))
    compute_scale = draw(st.floats(min_value=1e-4, max_value=1e-2))
    return phases, iterations, compute_scale


def build_program(phases, iterations, compute_scale):
    def program(rank, size):
        yield ops.Enter("main")
        for it in range(iterations):
            yield ops.Enter("iteration")
            for p, phase in enumerate(phases):
                if phase == "compute":
                    yield ops.Compute(
                        compute_scale * (1 + 0.3 * rank), region="work"
                    )
                elif phase == "barrier":
                    yield ops.Barrier()
                elif phase == "allreduce":
                    yield ops.Allreduce(size=64)
                elif phase == "bcast":
                    yield ops.Bcast(size=128)
                elif phase == "elapse":
                    yield ops.Elapse(compute_scale / 2)
                elif phase == "ring":
                    left = (rank - 1) % size
                    right = (rank + 1) % size
                    r = yield ops.Irecv(left, size=256, tag=it * 16 + p)
                    yield ops.Send(right, size=256, tag=it * 16 + p)
                    yield ops.Wait(r)
            yield ops.Leave("iteration")
        yield ops.Leave("main")

    return program


@given(spmd_program(), st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_random_spmd_programs_produce_valid_traces(spec, size):
    phases, iterations, compute_scale = spec
    result = simulate(size, build_program(*spec), network=NET)
    trace = result.trace
    assert validate_trace(trace).ok

    # Physical sanity: every rank's end time covers its own compute.
    own_compute = {
        rank: compute_scale * (1 + 0.3 * rank)
        * phases.count("compute") * iterations
        + (compute_scale / 2) * phases.count("elapse") * iterations
        for rank in range(size)
    }
    for rank, end in result.end_times.items():
        assert end >= own_compute[rank] - 1e-12

    # Synchronising phases: if any collective is present and size > 1,
    # all ranks must cover the *slowest* rank's compute time.
    has_sync = any(p in ("barrier", "allreduce", "bcast") for p in phases)
    if has_sync and size > 1 and "compute" in phases:
        slowest = max(own_compute.values())
        sync_positions = [
            i for i, p in enumerate(phases)
            if p in ("barrier", "allreduce", "bcast")
        ]
        compute_positions = [i for i, p in enumerate(phases) if p == "compute"]
        # Only guaranteed when a sync phase follows the last compute of
        # the last iteration... a final collective is enough:
        if sync_positions and sync_positions[-1] > compute_positions[-1]:
            for end in result.end_times.values():
                assert end >= slowest - 1e-12

    # Message conservation: every SEND has a matching RECV.
    sends = recvs = 0
    for rank in trace.ranks:
        ev = trace.events_of(rank)
        sends += int(np.count_nonzero(ev.kind == EventKind.SEND))
        recvs += int(np.count_nonzero(ev.kind == EventKind.RECV))
    assert sends == recvs
    expected = phases.count("ring") * iterations * size
    assert sends == expected


@given(spmd_program(), st.integers(min_value=2, max_value=5))
@settings(max_examples=20, deadline=None)
def test_random_programs_are_analyzable(spec, size):
    phases, iterations, compute_scale = spec
    result = simulate(size, build_program(*spec), network=NET)
    # The iteration region always qualifies as dominant candidate when
    # it is invoked >= 2p times.
    if iterations * size >= 2 * size:
        analysis = analyze_trace(result.trace)
        assert analysis.dominant_name in ("iteration", "work", "main")
        assert analysis.segmentation.total_segments > 0


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=20))
@settings(max_examples=30, deadline=None)
def test_compute_only_program_timing_exact(size, n_ops):
    """Without communication, end time equals the sum of computes."""

    def program(rank, size_):
        yield ops.Enter("main")
        for i in range(n_ops):
            yield ops.Compute(0.001 * (i + 1))
        yield ops.Leave("main")

    result = simulate(size, program)
    expected = 0.001 * n_ops * (n_ops + 1) / 2
    for end in result.end_times.values():
        assert end == pytest.approx(expected)


@given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=4))
@settings(max_examples=25, deadline=None)
def test_inclusive_time_conservation(size, extra):
    """main's inclusive time equals the rank's end time; the total
    exclusive time across regions equals total inclusive of main."""

    def program(rank, size_):
        yield ops.Enter("main")
        yield ops.Compute(0.01, region="a")
        for _ in range(extra):
            yield ops.Compute(0.002, region="b")
        yield ops.Barrier()
        yield ops.Leave("main")

    result = simulate(size, program, network=NET)
    profile = profile_trace(result.trace)
    main_incl = profile.stats.of("main").inclusive_sum
    total_excl = float(profile.stats.exclusive_sum.sum())
    assert main_incl == pytest.approx(total_excl)
    assert main_incl == pytest.approx(sum(result.end_times.values()))
