"""Tests for run comparison and activity shares."""

import numpy as np
import pytest

from repro.core import (
    activity_shares,
    analyze_trace,
    compare_analyses,
    compare_traces,
)
from repro.sim.workloads.synthetic import SyntheticConfig, generate


def make_pair(factor_b=2.0):
    """Two runs; run b slows rank 3 down by factor_b from iteration 5."""
    a = generate(SyntheticConfig(ranks=6, iterations=10, seed=1))
    outliers = {(3, it): 0.01 * (factor_b - 1) for it in range(5, 10)}
    b = generate(SyntheticConfig(ranks=6, iterations=10, outliers=outliers, seed=1))
    return a, b


class TestCompare:
    def test_identical_runs(self):
        a = generate(SyntheticConfig(ranks=4, iterations=6, seed=1))
        b = generate(SyntheticConfig(ranks=4, iterations=6, seed=1))
        comparison = compare_traces(a, b)
        assert comparison.speedup == pytest.approx(1.0)
        assert comparison.regressions == []
        assert comparison.improvements == []
        assert comparison.aligned_segments == 24

    def test_detects_regressions(self):
        a, b = make_pair()
        comparison = compare_traces(a, b)
        assert comparison.speedup < 1.0
        regressed = {(d.rank, d.segment_index) for d in comparison.regressions}
        assert regressed == {(3, it) for it in range(5, 10)}

    def test_detects_improvements_in_reverse(self):
        a, b = make_pair()
        comparison = compare_traces(b, a)
        assert comparison.speedup > 1.0
        improved = {(d.rank, d.segment_index) for d in comparison.improvements}
        assert improved == {(3, it) for it in range(5, 10)}

    def test_delta_and_ratio(self):
        a, b = make_pair(factor_b=3.0)
        comparison = compare_traces(a, b)
        top = comparison.regressions[0]
        assert top.delta > 0
        assert top.ratio == pytest.approx(3.0, rel=0.05)
        assert "->" in str(top)

    def test_format(self):
        a, b = make_pair()
        text = compare_traces(a, b).format()
        assert "aligned" in text and "regressions" in text

    def test_dominant_mismatch_rejected(self):
        a, b = make_pair()
        ana = analyze_trace(a)
        anb = analyze_trace(b).at_function("work")
        with pytest.raises(ValueError, match="different functions"):
            compare_analyses(ana, anb)

    def test_pinned_function(self):
        a, b = make_pair()
        comparison = compare_traces(a, b, dominant="work")
        assert comparison.aligned_segments == 60

    def test_rank_deltas(self):
        a, b = make_pair()
        comparison = compare_traces(a, b)
        deltas = comparison.rank_deltas()
        assert np.argmax(deltas) == 3

    def test_threshold_filters_noise(self):
        a, b = make_pair(factor_b=1.1)  # 10% change < 25% threshold
        comparison = compare_traces(a, b, min_relative_delta=0.25)
        assert comparison.regressions == []
        comparison = compare_traces(a, b, min_relative_delta=0.05)
        assert comparison.regressions


class TestActivityShares:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate(
            SyntheticConfig(ranks=4, iterations=8, slow_ranks={1: 1.5}, seed=3)
        )

    def test_columns_sum_to_one(self, trace):
        shares = activity_shares(trace, bins=32)
        np.testing.assert_allclose(shares.shares.sum(axis=0), 1.0)

    def test_paradigm_labels(self, trace):
        shares = activity_shares(trace, bins=32)
        assert "USER" in shares.labels
        assert "MPI" in shares.labels
        assert shares.labels[-1] == "idle"

    def test_user_dominates_compute_bound_run(self, trace):
        shares = activity_shares(trace, bins=32)
        assert shares.mean_share("USER") > 0.5

    def test_region_grouping(self, trace):
        shares = activity_shares(trace, bins=32, by="region", top_regions=1)
        assert "work" in shares.labels
        assert shares.labels[-1] == "idle"
        assert "other" in shares.labels  # the non-top regions fold here

    def test_bad_grouping(self, trace):
        with pytest.raises(ValueError, match="unknown grouping"):
            activity_shares(trace, by="magic")

    def test_of_and_mean(self, trace):
        shares = activity_shares(trace, bins=16)
        series = shares.of("USER")
        assert series.shape == (16,)
        assert 0 <= shares.mean_share("USER") <= 1

    def test_window(self, trace):
        shares = activity_shares(trace, bins=8, t0=0.0, t1=trace.t_max / 2)
        assert shares.edges[-1] == pytest.approx(trace.t_max / 2)

    def test_mpi_share_grows_in_cosmo(self, cosmo_trace):
        shares = activity_shares(trace=cosmo_trace, bins=60)
        mpi = shares.of("MPI")
        # Average of the last sixth far above the first sixth (Fig 4a).
        assert mpi[-10:].mean() > mpi[:10].mean() + 0.3


class TestAreaChart:
    def test_render(self, tmp_path):
        trace = generate(SyntheticConfig(ranks=4, iterations=8, seed=3))
        shares = activity_shares(trace, bins=64)
        from repro.viz import render_area_png

        path = tmp_path / "area.png"
        canvas = render_area_png(shares, path)
        assert path.exists() and path.stat().st_size > 500
        assert canvas.width == 1100
