"""Tests for the measurement layer (instrumenting Python code)."""

import threading

import numpy as np
import pytest

from repro.core import analyze_trace
from repro.measure import ManualClock, Measurement, WallClock
from repro.trace import validate_trace
from repro.trace.definitions import MetricMode, Paradigm


class TestManualClock:
    def test_advance(self):
        clock = ManualClock()
        assert clock.now() == 0.0
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_set(self):
        clock = ManualClock(start=1.0)
        clock.set(5.0)
        assert clock.now() == 5.0

    def test_backwards_rejected(self):
        clock = ManualClock(start=3.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.set(1.0)


class TestWallClock:
    def test_monotonic_from_zero(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert 0.0 <= a <= b


class TestMeasurement:
    def test_region_context_manager(self):
        clock = ManualClock()
        m = Measurement(name="t", clock=clock)
        rec = m.process(0)
        with rec.region("main"):
            clock.advance(1.0)
            with rec.region("inner"):
                clock.advance(2.0)
            clock.advance(1.0)
        trace = m.finish()
        assert validate_trace(trace).ok
        from repro.profiles import profile_trace

        stats = profile_trace(trace).stats
        assert stats.of("main").inclusive_sum == 4.0
        assert stats.of("inner").inclusive_sum == 2.0
        assert stats.of("main").exclusive_sum == 2.0

    def test_region_closed_on_exception(self):
        clock = ManualClock()
        m = Measurement(clock=clock)
        rec = m.process(0)
        with pytest.raises(RuntimeError):
            with rec.region("main"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        assert rec.depth == 0
        assert validate_trace(m.finish()).ok

    def test_instrument_decorator(self):
        clock = ManualClock()
        m = Measurement(clock=clock)
        rec = m.process(0)

        @rec.instrument
        def solve(n):
            clock.advance(0.5 * n)
            return n * 2

        @rec.instrument(name="fancy")
        def other():
            clock.advance(0.1)

        with rec.region("main"):
            assert solve(2) == 4
            other()
        trace = m.finish()
        from repro.profiles import profile_trace

        stats = profile_trace(trace).stats
        assert stats.of("solve").count == 1
        assert stats.of("solve").inclusive_sum == 1.0
        assert stats.of("fancy").count == 1

    def test_counters(self):
        clock = ManualClock()
        m = Measurement(clock=clock)
        rec = m.process(0)
        with rec.region("main"):
            clock.advance(1.0)
            assert rec.add_counter("flops", 100.0) == 100.0
            clock.advance(1.0)
            assert rec.add_counter("flops", 50.0) == 150.0
            rec.sample("temperature", 62.5, unit="C")
        trace = m.finish()
        from repro.core.metrics import per_rank_metric_total

        assert per_rank_metric_total(trace, "flops")[0] == 150.0
        assert trace.metrics.get("flops").mode == MetricMode.ACCUMULATED
        assert trace.metrics.get("temperature").mode == MetricMode.ABSOLUTE
        assert rec.counter_value("flops") == 150.0

    def test_messages(self):
        clock = ManualClock()
        m = Measurement(clock=clock)
        a = m.process(0)
        b = m.process(1)
        with a.region("main"):
            a.message_send(1, size=64, tag=2)
            clock.advance(0.1)
        with b.region("main"):
            b.message_recv(0, size=64, tag=2)
        trace = m.finish()
        from repro.trace.events import EventKind

        assert np.count_nonzero(trace.events_of(0).kind == EventKind.SEND) == 1
        assert np.count_nonzero(trace.events_of(1).kind == EventKind.RECV) == 1

    def test_explicit_enter_leave_with_paradigm(self):
        clock = ManualClock()
        m = Measurement(clock=clock)
        rec = m.process(0)
        rec.enter("MPI_Allreduce", paradigm=Paradigm.MPI)
        clock.advance(0.2)
        rec.leave("MPI_Allreduce")
        trace = m.finish()
        region = trace.regions.get("MPI_Allreduce")
        assert region.paradigm == Paradigm.MPI

    def test_finish_twice_rejected(self):
        m = Measurement()
        m.finish()
        with pytest.raises(RuntimeError, match="finished"):
            m.finish()
        with pytest.raises(RuntimeError, match="finished"):
            m.process(0)

    def test_thread_process_assigns_ranks(self):
        m = Measurement(clock=ManualClock())
        recorders = {}
        barrier = threading.Barrier(3)

        def worker():
            barrier.wait()
            rec = m.thread_process()
            recorders[threading.get_ident()] = rec

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ranks = sorted(r.rank for r in recorders.values())
        assert ranks == [0, 1, 2]

    def test_thread_process_stable_per_thread(self):
        m = Measurement(clock=ManualClock())
        assert m.thread_process() is m.thread_process()

    def test_end_to_end_with_analysis(self):
        """An instrumented 'application' flows through the full pipeline."""
        clock = ManualClock()
        m = Measurement(name="instrumented", clock=clock)
        for rank in range(4):
            rec = m.process(rank)
            rec.enter("main")
        for it in range(8):
            for rank in range(4):
                rec = m.process(rank)
                with rec.region("iteration"):
                    with rec.region("compute"):
                        clock.advance(0.01 * (2.0 if rank == 3 else 1.0))
                    with rec.region("MPI_Barrier", paradigm=Paradigm.MPI):
                        clock.advance(0.001)
        for rank in range(4):
            m.process(rank).leave("main")
        trace = m.finish()
        analysis = analyze_trace(trace)
        assert analysis.dominant_name == "iteration"
