"""Golden-snapshot regression suite.

Canonical traces live under ``tests/golden/`` as ``.jsonl`` files next
to an ``.expected.json`` snapshot of their full analysis.  The test
re-analyzes the *stored* trace (so reader + pipeline are both locked)
and compares a float-stable serialization against the snapshot; any
drift fails with a readable unified diff.

Regenerate after an intentional behaviour change with::

    pytest tests/test_golden.py --update-goldens

which rewrites the ``.expected.json`` files (and re-emits any missing
trace file from its in-repo generator).
"""

import difflib
import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.core import analyze_trace
from repro.trace import read_jsonl, write_jsonl

GOLDEN_DIR = Path(__file__).parent / "golden"


def _tiny_trace():
    # Mirrors the conftest ``tiny_trace`` fixture: two ranks, two
    # iterations, a barrier wait and one metric — the smallest trace
    # the full pipeline analyzes end to end.
    from repro.trace.builder import TraceBuilder
    from repro.trace.definitions import Paradigm

    tb = TraceBuilder(name="tiny")
    tb.region("main")
    tb.region("iter")
    tb.region("calc")
    tb.region("MPI_Barrier", paradigm=Paradigm.MPI)
    tb.metric("CYC")
    for rank, calc in ((0, 3.0), (1, 1.0)):
        p = tb.process(rank)
        p.enter(0.0, "main")
        for it in range(2):
            t0 = it * 4.0
            p.enter(t0, "iter")
            p.call(t0, t0 + calc, "calc")
            p.metric(t0 + calc, "CYC", (it + 1) * calc * 1e9)
            p.call(t0 + calc, t0 + 4.0, "MPI_Barrier")
            p.leave(t0 + 4.0, "iter")
        p.leave(8.0, "main")
    return tb.freeze()


def _generators():
    # figure1 is the paper's single-process call-tree illustration —
    # too degenerate for dominant-function selection, so the golden
    # set uses figure2/figure3 plus a hand-built minimal trace.
    from repro.paper import figure2_trace, figure3_trace
    from repro.sim.workloads import idle_wave, late_sender, serialization
    from repro.sim.workloads.synthetic import SyntheticConfig, generate

    return {
        "tiny": _tiny_trace,
        "figure2": figure2_trace,
        "figure3": figure3_trace,
        "synthetic_small": lambda: generate(
            SyntheticConfig(
                ranks=8,
                iterations=12,
                base_compute=0.01,
                slow_ranks={5: 1.6},
                outliers={(2, 7): 0.05},
                seed=3,
            )
        ),
        # Named phenomenon corpus (see docs/fuzzing.md): each locks the
        # analysis of one textbook inefficiency pattern.
        "idle_wave_small": lambda: idle_wave.generate(
            ranks=8, iterations=12
        ),
        "late_sender_small": lambda: late_sender.generate(
            ranks=6, iterations=12
        ),
        "serialization_small": lambda: serialization.generate(
            ranks=6, iterations=10
        ),
    }


CASES = sorted(_generators())


def _round(x):
    """Round to 12 significant digits; NaN/inf become JSON-safe tags."""
    x = float(x)
    if math.isnan(x):
        return "nan"
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    return float(f"{x:.12g}")


def _round_list(arr):
    return [_round(v) for v in np.asarray(arr, dtype=float).ravel()]


def snapshot(analysis) -> dict:
    """Stable, human-diffable serialization of one analysis."""
    trace = analysis.trace
    stats = analysis.profile.stats
    region_names = [r.name for r in trace.regions]
    heat, edges = analysis.heat_matrix(bins=16)
    imb = analysis.imbalance
    return {
        "trace": {
            "name": trace.name,
            "ranks": list(trace.ranks),
            "regions": region_names,
            "events": int(
                sum(len(trace.events_of(r)) for r in trace.ranks)
            ),
        },
        "dominant": analysis.dominant_name,
        "profile": {
            name: {
                "count": int(stats.count[i]),
                "inclusive_sum": _round(stats.inclusive_sum[i]),
                "exclusive_sum": _round(stats.exclusive_sum[i]),
            }
            for i, name in enumerate(region_names)
        },
        "sos": {
            str(rank): _round_list(analysis.sos[rank].sos)
            for rank in analysis.sos.ranks
        },
        "segment_starts": {
            str(rank): _round_list(analysis.segmentation[rank].t_start)
            for rank in analysis.sos.ranks
        },
        "imbalance": {
            "pct": _round(imb.imbalance_pct),
            "hot_ranks": [
                {"rank": h.rank, "zscore": _round(h.zscore)}
                for h in imb.hot_ranks
            ],
            "hot_segments": [
                {
                    "rank": h.rank,
                    "segment": h.segment_index,
                    "score": _round(h.score),
                }
                for h in imb.hot_segments
            ],
        },
        "trend": {
            "slope": _round(analysis.trend.slope),
            "tau": _round(analysis.trend.tau),
            "p_value": _round(analysis.trend.p_value),
            "increasing": bool(analysis.trend.increasing),
            "decreasing": bool(analysis.trend.decreasing),
        },
        "heat": {
            "edges": _round_list(edges),
            "matrix": [_round_list(row) for row in heat],
        },
    }


def _dump(data: dict) -> str:
    return json.dumps(data, indent=2, sort_keys=True) + "\n"


@pytest.mark.parametrize("case", CASES)
def test_golden(case, update_goldens):
    trace_path = GOLDEN_DIR / f"{case}.jsonl"
    expected_path = GOLDEN_DIR / f"{case}.expected.json"

    if update_goldens and not trace_path.exists():
        GOLDEN_DIR.mkdir(exist_ok=True)
        write_jsonl(_generators()[case](), trace_path)

    assert trace_path.exists(), (
        f"missing golden trace {trace_path}; run with --update-goldens"
    )
    actual = _dump(snapshot(analyze_trace(read_jsonl(trace_path))))

    if update_goldens:
        expected_path.write_text(actual)
        return

    assert expected_path.exists(), (
        f"missing golden snapshot {expected_path}; run with --update-goldens"
    )
    expected = expected_path.read_text()
    if actual != expected:
        diff = "".join(
            difflib.unified_diff(
                expected.splitlines(keepends=True),
                actual.splitlines(keepends=True),
                fromfile=f"golden/{case}.expected.json",
                tofile="current analysis",
                n=3,
            )
        )
        pytest.fail(
            f"analysis of {case} drifted from its golden snapshot "
            f"(regenerate with --update-goldens if intentional):\n{diff}"
        )


def test_stored_traces_match_generators():
    """The stored golden traces still equal their in-repo generators.

    Guards the other direction: if a simulator or figure builder
    changes, the stored trace keeps the old analysis green — this test
    makes such drift visible instead of silent.
    """
    from repro.trace.fingerprint import fingerprint_trace

    gens = _generators()
    for case in CASES:
        trace_path = GOLDEN_DIR / f"{case}.jsonl"
        if not trace_path.exists():
            pytest.skip("golden traces not generated yet")
        stored = fingerprint_trace(read_jsonl(trace_path)).hexdigest
        fresh = fingerprint_trace(gens[case]()).hexdigest
        assert stored == fresh, (
            f"{case}: generator output no longer matches stored golden "
            f"trace; regenerate with --update-goldens if intentional"
        )
