"""Tests for synchronization classification and dominant-function selection."""

import pytest

from repro.core.classify import SyncClassifier, default_classifier
from repro.core.dominant import rank_candidates, select_dominant
from repro.trace.builder import TraceBuilder
from repro.trace.definitions import Paradigm, Region, RegionRole


class TestSyncClassifier:
    def region(self, name, paradigm=Paradigm.USER, role=RegionRole.COMPUTE):
        return Region(id=0, name=name, paradigm=paradigm, role=role)

    def test_mpi_paradigm_is_sync(self):
        c = default_classifier()
        assert c.is_sync(self.region("MPI_Allreduce", Paradigm.MPI,
                                     RegionRole.COMMUNICATION))
        assert c.is_sync(self.region("MPI_Barrier", Paradigm.MPI,
                                     RegionRole.SYNCHRONIZATION))

    def test_user_compute_is_not_sync(self):
        assert not default_classifier().is_sync(self.region("solve"))

    def test_name_pattern_catches_unclassified_mpi(self):
        # A region recorded without paradigm info but with an MPI_ name.
        assert default_classifier().is_sync(self.region("MPI_Sendrecv"))

    def test_omp_barrier_pattern(self):
        assert default_classifier().is_sync(self.region("omp barrier @file:12"))

    def test_role_based(self):
        c = default_classifier()
        assert c.is_sync(
            self.region("spinlock_wait", Paradigm.USER, RegionRole.SYNCHRONIZATION)
        )

    def test_exclude_pattern_wins(self):
        c = SyncClassifier(exclude_patterns=("MPI_Custom*",))
        assert not c.is_sync(
            self.region("MPI_Custom_thing", Paradigm.MPI, RegionRole.COMMUNICATION)
        )

    def test_io_optional(self):
        io_region = self.region("fwrite", Paradigm.IO, RegionRole.FILE_IO)
        assert not default_classifier().is_sync(io_region)
        assert SyncClassifier(include_io=True).is_sync(io_region)

    def test_with_patterns_extends(self):
        c = default_classifier().with_patterns("my_sync_*")
        assert c.is_sync(self.region("my_sync_phase"))
        assert default_classifier().name_patterns != c.name_patterns

    def test_mask_over_trace(self, fig3):
        mask = default_classifier().mask(fig3)
        assert mask[fig3.regions.id_of("MPI")]
        assert not mask[fig3.regions.id_of("calc")]
        assert len(mask) == len(fig3.regions)


class TestDominantSelection:
    def test_paper_example(self, fig2):
        selection = select_dominant(fig2)
        assert selection.name == "a"
        assert selection.min_invocations == 6
        assert selection.dominant.inclusive_sum == 36.0
        assert selection.dominant.count == 9

    def test_main_excluded_by_invocation_count(self, fig2):
        names = [c.name for c in rank_candidates(fig2)]
        assert "main" not in names
        assert "i" not in names  # 3 invocations < 2p = 6

    def test_candidates_ranked_by_inclusive(self, fig2):
        candidates = rank_candidates(fig2)
        values = [c.inclusive_sum for c in candidates]
        assert values == sorted(values, reverse=True)

    def test_refinement_moves_down_the_list(self, fig2):
        selection = select_dominant(fig2)
        finer = selection.refined()
        assert finer.dominant.inclusive_sum <= selection.dominant.inclusive_sum
        assert finer.level == 1

    def test_refinement_out_of_range(self, fig2):
        selection = select_dominant(fig2)
        with pytest.raises(IndexError):
            selection.refined(99)

    def test_at_function(self, fig2):
        selection = select_dominant(fig2).at_function("c")
        assert selection.name == "c"
        with pytest.raises(KeyError):
            selection.at_function("nonexistent")

    def test_no_candidate_raises(self, fig1):
        with pytest.raises(ValueError, match="no dominant-function candidate"):
            select_dominant(fig1)

    def test_min_invocation_factor(self, fig2):
        # Factor 1 admits main (3 invocations = 1*p).
        candidates = rank_candidates(fig2, min_invocation_factor=1.0)
        assert candidates[0].name == "main"

    def test_mpi_regions_not_candidates(self, fig3):
        names = [c.name for c in rank_candidates(fig3)]
        assert "MPI" not in names
        assert "a" in names

    def test_mpi_admissible_when_asked(self, fig3):
        names = [
            c.name
            for c in rank_candidates(
                fig3, candidate_paradigms=(Paradigm.USER, Paradigm.MPI)
            )
        ]
        assert "MPI" in names

    def test_level_selects_directly(self, fig2):
        selection = select_dominant(fig2, level=1)
        assert selection.level == 1
        with pytest.raises(IndexError):
            select_dominant(fig2, level=42)

    def test_mean_segment(self, fig2):
        candidate = rank_candidates(fig2)[0]
        assert candidate.mean_segment == pytest.approx(4.0)

    def test_str(self, fig2):
        assert "a" in str(select_dominant(fig2).dominant)

    def test_ties_broken_by_region_id(self):
        tb = TraceBuilder()
        tb.region("x")
        tb.region("y")
        p = tb.process(0)
        for i, name in enumerate(("x", "y", "x", "y")):
            p.call(float(2 * i), 2 * i + 1.0, name)
        selection = select_dominant(tb.freeze())
        assert selection.name == "x"
