"""Tests for the HTML report and the hybrid OpenMP workload."""

import numpy as np
import pytest

from repro.core import analyze_trace
from repro.htmlreport import render_html_report
from repro.sim.workloads import hybrid_openmp
from repro.sim.workloads.synthetic import SyntheticConfig, generate
from repro.trace import validate_trace


@pytest.fixture(scope="module")
def hybrid_trace():
    return hybrid_openmp.generate(ranks=16, iterations=12)


@pytest.fixture(scope="module")
def hybrid_analysis(hybrid_trace):
    return analyze_trace(hybrid_trace)


class TestHybridWorkload:
    def test_trace_valid(self, hybrid_trace):
        assert validate_trace(hybrid_trace).ok

    def test_openmp_regions_classified(self, hybrid_trace):
        from repro.trace.definitions import Paradigm, RegionRole

        barrier = hybrid_trace.regions.get("omp barrier")
        assert barrier.paradigm == Paradigm.OPENMP
        assert barrier.role == RegionRole.SYNCHRONIZATION

    def test_slow_core_rank_flagged(self, hybrid_analysis):
        assert hybrid_analysis.hot_ranks() == [5]

    def test_omp_barrier_subtracted_from_sos(self, hybrid_analysis):
        """SOS excludes the implicit barrier wait: the slow rank's SOS
        excess stems from the slow thread's longer critical path."""
        sos = hybrid_analysis.sos
        ranks = sos.ranks
        sync = sos.sync_matrix()
        # Every rank has nonzero subtracted sync time (omp barrier + MPI).
        assert np.all(np.nansum(sync, axis=1) > 0)

    def test_slow_rank_validated(self):
        with pytest.raises(ValueError, match="slow_rank"):
            hybrid_openmp.generate(ranks=4, iterations=2, slow_rank=99)

    def test_dominant_is_timestep(self, hybrid_analysis):
        assert hybrid_analysis.dominant_name == "timestep"

    def test_determinism(self):
        a = hybrid_openmp.generate(ranks=4, iterations=4, seed=3)
        b = hybrid_openmp.generate(ranks=4, iterations=4, seed=3)
        for rank in a.ranks:
            assert a.events_of(rank) == b.events_of(rank)


class TestHtmlReport:
    @pytest.fixture(scope="class")
    def analysis(self):
        trace = generate(
            SyntheticConfig(ranks=5, iterations=8, slow_ranks={2: 1.6}, seed=4)
        )
        return analyze_trace(trace)

    def test_report_written(self, analysis, tmp_path):
        path = tmp_path / "report.html"
        html_doc = render_html_report(analysis, path, bins=64)
        assert path.exists()
        assert path.read_text() == html_doc

    def test_report_structure(self, analysis):
        doc = render_html_report(analysis, bins=64)
        assert doc.startswith("<!DOCTYPE html>")
        assert "<svg" in doc  # inline SOS heat map
        assert "data:image/png;base64," in doc  # embedded raster charts
        assert "Hot rank 2" in doc
        assert "Dominant-function candidates" in doc
        assert "iteration" in doc

    def test_report_no_counters(self, analysis):
        doc = render_html_report(analysis, bins=64, include_counters=False)
        assert "Hardware counters" not in doc

    def test_report_escapes_names(self, tmp_path):
        from repro.trace.builder import TraceBuilder

        tb = TraceBuilder(name="run <b>&</b>")
        tb.region("f<x>")
        p0 = tb.process(0)
        p1 = tb.process(1)
        for p in (p0, p1):
            for i in range(4):
                p.call(float(i), i + 0.5, "f<x>")
        trace = tb.freeze()
        analysis = analyze_trace(trace)
        doc = render_html_report(analysis, bins=16)
        assert "<b>&</b>" not in doc
        assert "f&lt;x&gt;" in doc

    def test_clean_report_says_ok(self):
        trace = generate(SyntheticConfig(ranks=4, iterations=6, seed=1))
        doc = render_html_report(analyze_trace(trace), bins=32)
        assert "No significant runtime imbalance" in doc

    def test_report_title_override(self, analysis):
        doc = render_html_report(analysis, title="My custom title", bins=32)
        assert "<title>My custom title</title>" in doc
