"""Tests for hotspot detection and temporal variation analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.imbalance import (
    detect_imbalances,
    imbalance_percentage,
    robust_zscores,
)
from repro.core.sos import RankSOS, SOSResult
from repro.core.segments import RankSegments, Segmentation
from repro.core.classify import default_classifier
from repro.core.variation import (
    binned_matrix,
    detect_trend,
    mann_kendall,
    step_series,
)


def make_sos(matrix, seg_duration=1.0):
    """Build an SOSResult from a dense (ranks, segments) value matrix."""
    matrix = np.asarray(matrix, dtype=np.float64)
    per_rank_seg = {}
    per_rank_sos = {}
    n_ranks, n_segs = matrix.shape
    for rank in range(n_ranks):
        t_start = np.arange(n_segs) * seg_duration
        seg = RankSegments(
            rank=rank,
            t_start=t_start,
            t_stop=t_start + seg_duration,
            invocation_row=np.arange(n_segs),
        )
        per_rank_seg[rank] = seg
        values = matrix[rank]
        per_rank_sos[rank] = RankSOS(
            rank=rank,
            duration=np.full(n_segs, seg_duration),
            sync_time=seg_duration - values,
            sos=values,
        )
    segmentation = Segmentation(0, per_rank_seg)
    return SOSResult(segmentation, per_rank_sos, default_classifier())


class TestRobustZscores:
    def test_outlier_detection(self):
        values = np.asarray([1.0] * 20 + [10.0])
        z = robust_zscores(values)
        assert z[-1] > 3.0

    def test_nan_passthrough(self):
        z = robust_zscores(np.asarray([1.0, np.nan, 2.0]))
        assert np.isnan(z[1]) and np.isfinite(z[0])

    def test_degenerate_all_equal(self):
        z = robust_zscores(np.ones(5))
        assert np.all(z == 0.0)

    def test_zero_mad_uses_relative_floor(self):
        # Most values identical, two true outliers: the MAD is zero, and
        # a std fallback would be polluted by the outliers themselves.
        values = np.asarray([1.0] * 10 + [1.5, 2.0])
        z = robust_zscores(values)
        assert np.all(np.isfinite(z))
        assert z[-1] > z[-2] > 3.0

    def test_zero_median_zero_mad_fallback_to_std(self):
        values = np.asarray([-1.0, 0.0, 0.0, 0.0, 1.0])
        z = robust_zscores(values)
        assert np.all(np.isfinite(z))
        assert z[-1] > 0 > z[0]

    def test_all_nan(self):
        z = robust_zscores(np.asarray([np.nan, np.nan]))
        assert np.all(np.isnan(z))


class TestImbalancePercentage:
    def test_perfect_balance(self):
        assert imbalance_percentage(np.ones(4)) == 0.0

    def test_known_value(self):
        # max 2, mean 1.25 -> (2-1.25)/2 = 37.5%
        assert imbalance_percentage(np.asarray([1, 1, 1, 2.0])) == pytest.approx(37.5)

    def test_empty_and_zero(self):
        assert imbalance_percentage(np.asarray([])) == 0.0
        assert imbalance_percentage(np.zeros(3)) == 0.0


class TestDetectImbalances:
    def test_hot_rank_detection(self):
        matrix = np.ones((16, 10))
        matrix[5] *= 2.0
        report = detect_imbalances(make_sos(matrix))
        assert [h.rank for h in report.hot_ranks] == [5]
        assert report.hottest_rank().rank == 5

    def test_materiality_bar(self):
        # Statistically separated but immaterial (0.1% above median).
        matrix = np.ones((16, 10))
        matrix[5] *= 1.001
        report = detect_imbalances(make_sos(matrix), min_relative_excess=0.1)
        assert report.hot_ranks == []

    def test_hot_segment_detection(self):
        matrix = np.ones((8, 12))
        matrix[3, 7] = 5.0
        report = detect_imbalances(make_sos(matrix))
        assert (3, 7) in [(h.rank, h.segment_index) for h in report.hot_segments]
        hottest = report.hottest_segment()
        assert hottest.rank == 3 and hottest.segment_index == 7
        assert hottest.t_start == 7.0 and hottest.t_stop == 8.0

    def test_slow_rank_segments_not_flagged_as_outliers(self):
        # A persistently slow rank is a rank anomaly, not a segment one:
        # its segments are not anomalous within the rank.
        matrix = np.ones((8, 12))
        matrix[3] *= 2.0
        report = detect_imbalances(make_sos(matrix))
        assert report.hot_segments == []
        assert [h.rank for h in report.hot_ranks] == [3]

    def test_empty(self):
        report = detect_imbalances(make_sos(np.ones((1, 0))))
        assert not report.has_findings

    def test_max_findings_cap(self):
        matrix = np.ones((40, 4))
        matrix[:20] *= np.linspace(3, 5, 20)[:, None]
        report = detect_imbalances(make_sos(matrix), max_findings=5)
        assert len(report.hot_ranks) <= 5

    def test_report_str(self):
        matrix = np.ones((16, 10))
        matrix[2] *= 3.0
        report = detect_imbalances(make_sos(matrix))
        assert "rank 2" in str(report.hot_ranks[0])


class TestMannKendall:
    def test_increasing_series(self):
        tau, p = mann_kendall(np.arange(20.0))
        assert tau == 1.0
        assert p < 0.001

    def test_decreasing_series(self):
        tau, p = mann_kendall(np.arange(20.0)[::-1])
        assert tau == -1.0
        assert p < 0.001

    def test_flat_series(self):
        tau, p = mann_kendall(np.ones(20))
        assert tau == 0.0
        assert p == 1.0

    def test_too_short(self):
        assert mann_kendall(np.asarray([1.0, 2.0])) == (0.0, 1.0)

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=3,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_tau_bounds_and_p_valid(self, values):
        tau, p = mann_kendall(np.asarray(values))
        assert -1.0 <= tau <= 1.0
        assert 0.0 <= p <= 1.0

    def test_nan_values_filtered(self):
        clean = mann_kendall(np.arange(20.0))
        with_nan = mann_kendall(
            np.concatenate([np.arange(20.0), [np.nan, np.inf]])
        )
        assert with_nan == clean

    def test_exact_s_refuses_non_finite(self):
        # The merge-count path would turn a NaN into an arbitrary
        # finite S where the legacy sign-matrix sum propagated NaN.
        from repro.core.variation import _kendall_s

        with pytest.raises(ValueError, match="finite"):
            _kendall_s(np.asarray([1.0, np.nan, 2.0]))
        assert _kendall_s(np.asarray([1.0, 3.0, 2.0])) == 1


class TestDetectTrend:
    def test_increasing_trend(self):
        steps = np.linspace(1.0, 2.0, 30)
        matrix = np.tile(steps, (8, 1))
        trend = detect_trend(make_sos(matrix))
        assert trend.increasing
        assert trend.slope == pytest.approx(steps[1] - steps[0], rel=0.05)

    def test_flat_no_trend(self):
        trend = detect_trend(make_sos(np.ones((8, 30))))
        assert not trend.increasing and not trend.decreasing

    def test_tiny_float_noise_not_a_trend(self):
        matrix = np.ones((4, 20)) + np.linspace(0, 1e-15, 20)
        trend = detect_trend(make_sos(matrix))
        assert not trend.increasing

    def test_describe(self):
        trend = detect_trend(make_sos(np.tile(np.arange(10.0) + 1, (3, 1))))
        assert "increasing" in trend.describe()

    def test_short_series(self):
        trend = detect_trend(make_sos(np.ones((3, 2))))
        assert trend.n_steps == 2
        assert not trend.increasing


class TestBinnedMatrix:
    def test_values_land_in_bins(self):
        sos = make_sos(np.asarray([[1.0, 2.0, 3.0]]), seg_duration=1.0)
        matrix, edges = binned_matrix(sos, bins=6)
        assert matrix.shape == (1, 6)
        assert list(matrix[0]) == [1, 1, 2, 2, 3, 3]
        assert edges[0] == 0.0 and edges[-1] == 3.0

    def test_gaps_are_nan(self):
        seg = RankSegments(
            rank=0,
            t_start=np.asarray([0.0, 5.0]),
            t_stop=np.asarray([1.0, 6.0]),
            invocation_row=np.asarray([0, 1]),
        )
        segmentation = Segmentation(0, {0: seg})
        sos = SOSResult(
            segmentation,
            {
                0: RankSOS(
                    rank=0,
                    duration=np.asarray([1.0, 1.0]),
                    sync_time=np.zeros(2),
                    sos=np.asarray([1.0, 2.0]),
                )
            },
            default_classifier(),
        )
        matrix, _ = binned_matrix(sos, bins=6)
        assert np.isnan(matrix[0, 2])  # middle gap
        assert matrix[0, 0] == 1.0 and matrix[0, -1] == 2.0

    def test_normalised(self):
        sos = make_sos(np.asarray([[2.0, 4.0]]))
        matrix, _ = binned_matrix(sos, bins=4, normalize=True)
        assert np.nanmin(matrix) == 0.0 and np.nanmax(matrix) == 1.0

    def test_explicit_window(self):
        sos = make_sos(np.asarray([[1.0, 2.0, 3.0]]))
        matrix, edges = binned_matrix(sos, bins=2, t0=1.0, t1=2.0)
        assert edges[0] == 1.0 and edges[-1] == 2.0
        assert list(matrix[0]) == [2.0, 2.0]

    def test_step_series(self):
        sos = make_sos(np.asarray([[1.0, 3.0], [3.0, 5.0]]))
        series = step_series(sos)
        assert list(series) == [2.0, 4.0]
