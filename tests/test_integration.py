"""End-to-end integration: the golden path through every subsystem.

simulate → write → read → validate → analyze → refine → explain →
baselines → render → export, in one flow per scenario.  These tests
catch interface drift between subsystems that unit tests cannot see.
"""

import os

import numpy as np
import pytest

from repro.baselines import analyze_profile_only, search_patterns
from repro.core import (
    AnalysisConfig,
    analyze_trace,
    communication_matrix,
    compare_traces,
    explain_segment,
)
from repro.core.streaming import StreamingAnalyzer
from repro.htmlreport import render_html_report
from repro.profiles import write_profile_csv, write_rank_summary_csv, write_segments_csv
from repro.sim.workloads.synthetic import SyntheticConfig, generate
from repro.trace import (
    clip_trace,
    read_trace,
    validate_trace,
    write_binary,
    write_jsonl,
)
from repro.viz import render_analysis


@pytest.fixture(scope="module")
def scenario(tmp_path_factory):
    """One simulated run with two planted problems, saved to disk."""
    config = SyntheticConfig(
        ranks=8,
        iterations=16,
        slow_ranks={6: 1.7},
        outliers={(1, 9): 0.06},
        jitter_sigma=0.004,
        seed=13,
    )
    trace = generate(config)
    root = tmp_path_factory.mktemp("golden")
    binary = root / "run.rpt"
    text = root / "run.jsonl"
    write_binary(trace, binary)
    write_jsonl(trace, text)
    return trace, binary, text, root


class TestGoldenPath:
    def test_roundtrip_both_formats(self, scenario):
        trace, binary, text, _root = scenario
        for path in (binary, text):
            back = read_trace(path)
            assert validate_trace(back).ok
            assert back.num_events == trace.num_events
            for rank in trace.ranks:
                assert back.events_of(rank) == trace.events_of(rank)

    def test_full_analysis_finds_both_problems(self, scenario):
        trace, binary, _text, _root = scenario
        analysis = analyze_trace(read_trace(binary))
        assert 6 in analysis.hot_ranks()
        assert (1, 9) in analysis.hot_segments()

    def test_refine_explain_chain(self, scenario):
        trace, _binary, _text, _root = scenario
        analysis = analyze_trace(trace)
        fine = analysis.at_function("work")
        hot = [h for h in fine.imbalance.hot_segments if h.rank == 1]
        assert hot
        exp = explain_segment(fine, hot[0].rank, hot[0].segment_index)
        assert exp.rank == 1
        # The interruption shows as a low cycle rate at this level.
        rate = exp.counter_rates["PAPI_TOT_CYC"]
        typical = exp.typical_counter_rates["PAPI_TOT_CYC"]
        assert rate < typical

    def test_streaming_agrees_with_batch(self, scenario):
        trace, _binary, _text, _root = scenario
        batch = analyze_trace(trace)
        analyzer = StreamingAnalyzer(
            trace.regions, trace.num_processes, dominant=batch.dominant_name
        )
        for rank in trace.ranks:
            analyzer.feed(rank, trace.events_of(rank))
        for rank in trace.ranks:
            np.testing.assert_allclose(
                analyzer.sos_series(rank), batch.sos[rank].sos
            )
        assert any(a.segment.rank == 1 for a in analyzer.alerts)

    def test_baselines_run_on_same_trace(self, scenario):
        trace, _binary, _text, _root = scenario
        po = analyze_profile_only(trace)
        assert 6 in po.flagged_ranks()
        ps = search_patterns(trace)
        assert ps.instances
        cm = communication_matrix(trace, matched_times=False)
        assert cm.num_messages > 0

    def test_render_everything(self, scenario):
        trace, _binary, _text, root = scenario
        analysis = analyze_trace(trace)
        written = render_analysis(analysis, root / "views", bins=64)
        for path in written.values():
            assert os.path.getsize(path) > 200
        html = root / "report.html"
        render_html_report(analysis, html, bins=64)
        assert html.stat().st_size > 10_000

    def test_exports(self, scenario):
        trace, _binary, _text, root = scenario
        analysis = analyze_trace(trace)
        assert write_profile_csv(analysis.profile, root / "p.csv") > 0
        assert write_rank_summary_csv(analysis, root / "r.csv") == 8
        assert write_segments_csv(analysis, root / "s.csv") == 8 * 16

    def test_clip_and_reanalyze(self, scenario):
        trace, _binary, _text, _root = scenario
        analysis = analyze_trace(trace)
        seg = analysis.segmentation[1]
        window = clip_trace(
            trace, float(seg.t_start[8]), float(seg.t_stop[10])
        )
        assert validate_trace(window).ok
        # The clipped window still contains the outlier invocation.
        sub = analyze_trace(window, AnalysisConfig(validate=False))
        assert sub.segmentation.total_segments > 0

    def test_compare_against_clean_run(self, scenario):
        trace, _binary, _text, _root = scenario
        clean = generate(
            SyntheticConfig(ranks=8, iterations=16, jitter_sigma=0.004,
                            seed=13)
        )
        comparison = compare_traces(clean, trace, min_relative_delta=0.3)
        assert comparison.speedup < 1.0
        regressed_ranks = {d.rank for d in comparison.regressions}
        assert 6 in regressed_ranks
        assert (1, 9) in {
            (d.rank, d.segment_index) for d in comparison.regressions
        }


class TestMeasurementIntegration:
    def test_instrumented_code_through_full_stack(self, tmp_path):
        from repro.measure import ManualClock, Measurement
        from repro.trace.definitions import Paradigm

        m = Measurement(name="integration")
        clocks = [ManualClock() for _ in range(3)]
        recorders = [m.process(r, clock=clocks[r]) for r in range(3)]
        for rec in recorders:
            rec.enter("main")
        for it in range(8):
            done = []
            for rank, rec in enumerate(recorders):
                rec.enter("iteration")
                with rec.region("kernel"):
                    clocks[rank].advance(0.01 * (3.0 if rank == 2 else 1.0))
                    rec.add_counter("ops", 100.0)
                done.append(clocks[rank].now())
            exit_t = max(done) + 1e-4
            for rank, rec in enumerate(recorders):
                with rec.region("MPI_Barrier", paradigm=Paradigm.MPI):
                    clocks[rank].set(exit_t)
                rec.leave("iteration")
        for rec in recorders:
            rec.leave("main")
        trace = m.finish()

        path = tmp_path / "m.rpt"
        write_binary(trace, path)
        analysis = analyze_trace(read_trace(path))
        assert analysis.hot_ranks() == [2]
        render_html_report(analysis, tmp_path / "m.html", bins=32)
        assert (tmp_path / "m.html").exists()
