"""Tests of the scenario fuzzer, differential oracle and minimizer.

Three layers:

* Determinism — a seed must pin the spec, the trace bytes, and the
  CLI output, forever.
* The oracle itself — green on healthy engines over both random
  scenarios and the named phenomenon corpus, and *red* when a bug is
  deliberately seeded into an engine (the mutation test: an oracle
  that cannot catch a planted bug is decoration).
* The minimizer — shrinks a failing scenario while preserving the
  failure, and writes a runnable self-contained repro.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro.trace.cursor as cursor_mod
from repro.cli import main
from repro.sim.fuzz import (
    COLLECTIVES,
    PATTERNS,
    InjectionSpec,
    ScenarioSpec,
    build_trace,
    fuzz_run,
    generate_spec,
    kind_preserving_predicate,
    minimize,
    run_oracle,
    run_oracle_trace,
    write_repro,
)
from repro.trace.fingerprint import fingerprint_trace

# A small matrix keeps the in-tier-1 oracle runs fast; the full
# default matrix runs under ``-m fuzz`` and in the nightly CI job.
SMALL = dict(shard_counts=(1, 3), chunk_sizes=(7, None), versions=(1, 2))


class TestGenerateSpec:
    def test_deterministic(self):
        for seed in range(20):
            a, b = generate_spec(seed), generate_spec(seed)
            assert a == b
            assert a.to_json() == b.to_json()

    def test_seeds_vary(self):
        specs = {generate_spec(s).to_json() for s in range(30)}
        assert len(specs) > 20

    def test_sampled_fields_valid(self):
        for seed in range(50):
            spec = generate_spec(seed)
            assert 2 <= spec.ranks <= 12
            # >= 3 iterations keeps every USER region above the 2p
            # dominant-candidate invocation floor.
            assert spec.iterations >= 3
            assert spec.pattern in PATTERNS
            assert spec.collective in COLLECTIVES
            assert not (spec.pattern == "none" and spec.collective == "none")
            for inj in spec.injections:
                assert all(r < spec.ranks for r in inj.ranks)

    def test_trace_bytes_reproducible(self):
        spec = generate_spec(3)
        a = fingerprint_trace(build_trace(spec)).hexdigest
        b = fingerprint_trace(build_trace(spec)).hexdigest
        assert a == b

    def test_spec_json_roundtrip(self):
        spec = generate_spec(5)
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        with_inj = ScenarioSpec(
            seed=1, ranks=4, iterations=3,
            injections=(InjectionSpec("burst", ranks=(1, 2), magnitude=2.0),),
        )
        assert ScenarioSpec.from_json(with_inj.to_json()) == with_inj

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(seed=0, ranks=1, iterations=3)
        with pytest.raises(ValueError):
            ScenarioSpec(seed=0, ranks=4, iterations=3, pattern="bogus")

    def test_every_pattern_simulates(self):
        for pattern in PATTERNS:
            spec = ScenarioSpec(
                seed=0, ranks=4, iterations=3, pattern=pattern,
                collective="barrier",
            )
            trace = build_trace(spec)
            assert trace.num_processes == 4

    def test_rendezvous_sized_messages_do_not_deadlock(self):
        # 128 KiB payloads exceed the eager threshold; every pattern
        # must stay deadlock-free under rendezvous semantics.
        for pattern in ("halo_ring", "chain", "token_ring", "pairs"):
            spec = ScenarioSpec(
                seed=0, ranks=5, iterations=3, pattern=pattern,
                collective="none", msg_bytes=128 * 1024,
            )
            assert build_trace(spec).num_processes == 5


class TestOracle:
    def test_healthy_engines_pass(self):
        report = run_oracle(generate_spec(0), **SMALL)
        assert report.ok, report.summary()
        assert report.cells > 10
        assert report.fingerprint

    @pytest.mark.fuzz
    @pytest.mark.parametrize("seed", range(1, 11))
    def test_healthy_engines_pass_full_matrix(self, seed):
        report = run_oracle(generate_spec(seed))
        assert report.ok, report.summary()

    def test_corpus_trace_passes(self):
        from repro.sim.workloads import late_sender

        trace = late_sender.generate(ranks=4, iterations=6)
        report = run_oracle_trace(trace, **SMALL)
        assert report.ok, report.summary()

    @pytest.mark.fuzz
    @pytest.mark.parametrize("workload", ["idle_wave", "serialization"])
    def test_corpus_traces_pass_full_matrix(self, workload):
        from repro.sim import workloads

        trace = getattr(workloads, workload).generate(ranks=6, iterations=8)
        report = run_oracle_trace(trace, **SMALL)
        assert report.ok, report.summary()

    def test_simulation_crash_is_reported(self):
        bad = ScenarioSpec(
            seed=0, ranks=4, iterations=3,
            injections=(InjectionSpec("straggler", ranks=(0,),
                                      magnitude=-2.0),),
        )
        report = run_oracle(bad, **SMALL)
        assert not report.ok
        assert report.failures[0].cell == "simulate"


def _buggy_chunk_bounds(real):
    """Planted engine bug: chunked reads silently skip the 2nd chunk."""

    def buggy(n, chunk_events):
        starts = real(n, chunk_events)
        return starts[:1] + starts[2:] if len(starts) > 2 else starts

    return buggy


class TestMutation:
    """The oracle must catch a deliberately planted engine bug."""

    def test_planted_bug_caught_and_minimized(self, monkeypatch, tmp_path):
        spec = generate_spec(2)
        monkeypatch.setattr(
            cursor_mod, "_chunk_bounds",
            _buggy_chunk_bounds(cursor_mod._chunk_bounds),
        )

        report = run_oracle(spec, **SMALL)
        assert not report.ok, "planted chunking bug was not caught"
        assert any("incremental" in f.cell or "session" in f.cell
                   for f in report.failures)

        # The kind-preserving predicate refuses reductions that merely
        # fail for a *different* reason (e.g. dropping below the 2p
        # dominant-candidate floor crashes the reference pipeline).
        still_fails = kind_preserving_predicate(report, **SMALL)
        minimized = minimize(spec, still_fails)
        assert still_fails(minimized)
        final_kinds = run_oracle(minimized, **SMALL).failure_kinds()
        assert final_kinds & report.failure_kinds()
        assert "reference" not in final_kinds
        assert minimized.size() <= spec.size() * 0.25, (
            f"minimizer only reached {minimized.size()} from {spec.size()}"
        )

        final = run_oracle(minimized, **SMALL)
        script = write_repro(final, tmp_path)
        assert script.exists()
        data = json.loads(
            (tmp_path / f"repro-seed{spec.seed}.json").read_text()
        )
        assert data["failures"]
        assert (tmp_path / f"repro-seed{spec.seed}.jsonl").exists()

    def test_healthy_engine_rejects_minimize(self):
        with pytest.raises(ValueError, match="failing"):
            minimize(generate_spec(0), lambda s: False)


class TestRepro:
    def test_repro_script_runs_green_on_healthy_engines(self, tmp_path):
        # The repro artifacts are self-contained: with the planted bug
        # absent, re-running the script must exit 0.
        spec = ScenarioSpec(seed=0, ranks=2, iterations=3,
                            pattern="sendrecv_ring", collective="barrier")
        report = run_oracle(spec, **SMALL)
        assert report.ok
        script = write_repro(report, tmp_path)
        src_dir = Path(__file__).parent.parent / "src"
        result = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, timeout=300,
            env={"PYTHONPATH": str(src_dir), "PATH": "/usr/bin:/bin",
                 "REPRO_SHARD_WORKERS": "1"},
        )
        assert result.returncode == 0, result.stdout + result.stderr


class TestFuzzCLI:
    def test_cli_output_byte_reproducible(self, capsys):
        assert main(["fuzz", "--seed", "7", "--runs", "1"]) == 0
        first = capsys.readouterr().out
        assert main(["fuzz", "--seed", "7", "--runs", "1"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "1/1 scenarios OK" in first

    def test_cli_rejects_zero_runs(self, capsys):
        assert main(["fuzz", "--runs", "0"]) == 2
        assert "at least 1" in capsys.readouterr().err

    def test_fuzz_run_writes_repro_on_failure(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            cursor_mod, "_chunk_bounds",
            _buggy_chunk_bounds(cursor_mod._chunk_bounds),
        )
        lines = []
        reports = fuzz_run(
            seed=2, runs=1, minimize_failures=True,
            corpus_dir=tmp_path, log=lines.append,
        )
        assert len(reports) == 1 and not reports[0].ok
        assert any("minimized" in ln for ln in lines)
        assert list(tmp_path.glob("repro-seed2.*"))


class TestPhenomenonWorkloads:
    """The named corpus exhibits the phenomena it is named after."""

    def test_idle_wave_rejects_bad_config(self):
        from repro.sim.workloads.idle_wave import IdleWaveConfig

        with pytest.raises(ValueError):
            IdleWaveConfig(ranks=2)
        with pytest.raises(ValueError):
            IdleWaveConfig(source_rank=99)

    def test_idle_wave_delays_propagate_beyond_source(self):
        from repro.core import analyze_trace
        from repro.sim.workloads import idle_wave

        trace = idle_wave.generate(ranks=8, iterations=12)
        analysis = analyze_trace(trace)
        source = 4  # defaults to ranks // 2
        # The injected burst must show up on the source rank and, via
        # the ring dependencies alone (there is no collective), induce
        # waiting on at least one other rank.
        sync = {
            r: float(analysis.sos[r].sync_time.sum())
            for r in analysis.sos.ranks
        }
        assert sync[source] >= 0.0
        others = [t for r, t in sync.items() if r != source]
        assert max(others) > 0.0

    def test_late_sender_waiting_grows_down_the_pipeline(self):
        from repro.core import analyze_trace
        from repro.sim.workloads import late_sender

        trace = late_sender.generate(ranks=6, iterations=12)
        analysis = analyze_trace(trace)
        sync = [
            float(analysis.sos[r].sync_time.sum())
            for r in sorted(analysis.sos.ranks)
        ]
        # The head produces, everyone else waits on the slow episodes:
        # downstream ranks wait at least as much as the first consumer.
        assert sync[-1] > 0.0
        assert sync[-1] >= sync[1] * 0.5

    def test_serialization_wait_scales_with_rank(self):
        from repro.core import analyze_trace
        from repro.sim.workloads import serialization

        # Without the closing collective (which re-levels total waits),
        # the only waiting is for the token, so it must grow with the
        # rank index: rank 0 never waits, the tail waits the longest.
        trace = serialization.generate(
            ranks=6, iterations=10, collective="none"
        )
        analysis = analyze_trace(trace)
        sync = [
            float(analysis.sos[r].sync_time.sum())
            for r in sorted(analysis.sos.ranks)
        ]
        assert sync[-1] > sync[0]
        assert sync[-1] > sync[1]

    def test_workloads_registered_in_cli(self, tmp_path, capsys):
        for workload in ("idle_wave", "late_sender", "serialization"):
            out = tmp_path / f"{workload}.jsonl"
            code = main([
                "simulate", workload, "-o", str(out),
                "--processes", "4", "--iterations", "6",
            ])
            assert code == 0 and out.exists()
            capsys.readouterr()

    def test_phenomenon_workloads_reject_seed(self, tmp_path, capsys):
        code = main([
            "simulate", "idle_wave", "-o", str(tmp_path / "x.jsonl"),
            "--seed", "3",
        ])
        assert code == 2
        assert "does not apply" in capsys.readouterr().err
