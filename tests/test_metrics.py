"""Tests for counter analysis (metric series, deltas, binning)."""

import numpy as np
import pytest

from repro.core.metrics import (
    binned_metric_matrix,
    metric_series,
    metric_sos_correlation,
    per_rank_metric_total,
    segment_metric_delta,
)
from repro.core.segments import segment_trace
from repro.profiles import replay_trace
from repro.trace.builder import TraceBuilder
from repro.trace.definitions import MetricMode


@pytest.fixture()
def counter_trace():
    """Two ranks, accumulated counter sampled at varying times."""
    tb = TraceBuilder(name="counters")
    tb.region("iter")
    tb.metric("CYC", unit="cycles", mode=MetricMode.ACCUMULATED)
    tb.metric("GAUGE", unit="K", mode=MetricMode.ABSOLUTE)
    p0 = tb.process(0)
    p0.enter(0.0, "iter")
    p0.metric(1.0, "CYC", 100.0)
    p0.metric(2.0, "CYC", 300.0)
    p0.leave(2.0)
    p0.enter(2.0, "iter")
    p0.metric(3.0, "GAUGE", 7.0)
    p0.metric(4.0, "CYC", 400.0)
    p0.leave(4.0)
    p1 = tb.process(1)
    p1.enter(0.0, "iter")
    p1.metric(2.0, "CYC", 50.0)
    p1.leave(2.0)
    p1.enter(2.0, "iter")
    p1.metric(4.0, "CYC", 60.0)
    p1.leave(4.0)
    return tb.freeze()


class TestMetricSeries:
    def test_extraction(self, counter_trace):
        series = metric_series(counter_trace, "CYC")
        assert list(series[0].values) == [100.0, 300.0, 400.0]
        assert list(series[1].times) == [2.0, 4.0]

    def test_value_at(self, counter_trace):
        s = metric_series(counter_trace, "CYC")[0]
        assert s.value_at(0.5) == 0.0  # before first sample
        assert s.value_at(1.0) == 100.0
        assert s.value_at(3.0) == 300.0
        assert s.value_at(99.0) == 400.0

    def test_delta(self, counter_trace):
        s = metric_series(counter_trace, "CYC")[0]
        assert s.delta(1.0, 4.0) == 300.0

    def test_by_id_or_name(self, counter_trace):
        by_name = metric_series(counter_trace, "CYC")
        by_id = metric_series(counter_trace, counter_trace.metrics.id_of("CYC"))
        assert np.array_equal(by_name[0].values, by_id[0].values)

    def test_missing_metric_raises(self, counter_trace):
        with pytest.raises(KeyError):
            metric_series(counter_trace, "NOPE")


class TestPerRankTotal:
    def test_totals(self, counter_trace):
        totals = per_rank_metric_total(counter_trace, "CYC")
        assert list(totals) == [400.0, 60.0]

    def test_rank_without_samples(self, counter_trace):
        totals = per_rank_metric_total(counter_trace, "GAUGE")
        assert totals[1] == 0.0


class TestSegmentMetricDelta:
    def test_deltas_per_segment(self, counter_trace):
        tables = replay_trace(counter_trace)
        segmentation = segment_trace(tables, counter_trace.regions.id_of("iter"))
        deltas = segment_metric_delta(counter_trace, "CYC", segmentation)
        assert deltas.shape == (2, 2)
        assert deltas[0, 0] == 300.0  # samples at t=1 (100) and t=2 (300)
        assert deltas[0, 1] == 100.0  # 300 -> 400
        assert deltas[1, 0] == 50.0
        assert deltas[1, 1] == 10.0

    def test_interruption_signature(self):
        """Low counter rate in the interrupted segment (Fig 5c logic)."""
        tb = TraceBuilder()
        tb.region("step")
        tb.metric("CYC", mode=MetricMode.ACCUMULATED)
        p = tb.process(0)
        value = 0.0
        t = 0.0
        for i in range(5):
            duration = 1.0 if i != 2 else 3.0  # interrupted step is long...
            p.enter(t, "step")
            value += 1e9  # ...but all steps do identical work
            p.metric(t + duration, "CYC", value)
            p.leave(t + duration, "step")
            t += duration
        trace = tb.freeze()
        tables = replay_trace(trace)
        segmentation = segment_trace(tables, 0)
        deltas = segment_metric_delta(trace, "CYC", segmentation)
        durations = segmentation[0].duration
        rates = deltas[0] / durations
        assert np.argmin(rates) == 2
        assert rates[2] == pytest.approx(rates[0] / 3)


class TestBinnedMetricMatrix:
    def test_rate_mode_for_accumulated(self, counter_trace):
        matrix, edges = binned_metric_matrix(counter_trace, "CYC", bins=4)
        assert matrix.shape == (2, 4)
        # Total integrates back to the final counter value.
        widths = np.diff(edges)
        np.testing.assert_allclose(
            (matrix * widths).sum(axis=1), [400.0, 60.0]
        )

    def test_absolute_mode_uses_last_sample(self, counter_trace):
        matrix, _ = binned_metric_matrix(counter_trace, "GAUGE", bins=4)
        assert np.isnan(matrix[0, 0])  # before the only sample
        assert matrix[0, -1] == 7.0

    def test_explicit_rate_override(self, counter_trace):
        matrix, _ = binned_metric_matrix(
            counter_trace, "GAUGE", bins=4, as_rate=True
        )
        assert np.all(np.isfinite(matrix[0]))


class TestCorrelation:
    def test_perfect_correlation(self):
        a = np.asarray([1.0, 2.0, 3.0, 10.0])
        assert metric_sos_correlation(a, 5 * a) == pytest.approx(1.0)

    def test_degenerate(self):
        assert metric_sos_correlation(np.ones(4), np.arange(4.0)) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            metric_sos_correlation(np.ones(3), np.ones(4))
