"""Unit and property tests for the sharded analysis engine.

The differential suite (``tests/test_differential.py``) proves the
end-to-end equality of sharded and unsharded analyses; this module
pins down the merge layer itself — the algebraic properties that make
that equality independent of how ranks are grouped — plus the shard
planner and the engine's plumbing.
"""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.session import AnalysisSession
from repro.core.shard import (
    BYTES_PER_EVENT,
    ShardEngine,
    ShardPlan,
    assemble_sos,
    plan_shards,
    shard_workers,
)
from repro.core.classify import default_classifier
from repro.profiles import (
    FunctionStatistics,
    merge_statistics_arrays,
    rank_statistics_arrays,
)
from repro.profiles.replay import replay_trace


# -- plan_shards -----------------------------------------------------------


class TestPlanShards:
    def test_single_shard_default(self):
        plan = plan_shards({0: 10, 1: 20, 2: 30})
        assert plan.groups == ((0, 1, 2),)
        assert plan.events == (60,)

    def test_every_rank_exactly_once_and_ordered(self):
        counts = {r: 100 + r for r in range(17)}
        for n in (1, 2, 3, 5, 16, 17, 40):
            plan = plan_shards(counts, shards=n)
            assert list(plan.ranks) == sorted(counts)
            # boundary collisions may merge groups, never split extras
            assert 1 <= plan.num_shards <= min(n, len(counts))
            for group in plan.groups:
                assert list(group) == sorted(group)
                assert group  # no empty shards

    def test_balanced_by_event_count(self):
        # One huge rank should sit alone in its shard.
        counts = {0: 1000, 1: 10, 2: 10, 3: 10}
        plan = plan_shards(counts, shards=2)
        assert plan.groups == ((0,), (1, 2, 3))

    def test_max_memory_raises_shard_count(self):
        counts = {r: 100_000 for r in range(8)}
        budget_mb = 2 * 100_000 * BYTES_PER_EVENT / 1e6
        plan = plan_shards(counts, max_memory_mb=budget_mb)
        assert plan.num_shards >= 4
        assert plan.max_shard_bytes() <= budget_mb * 1e6

    def test_knobs_combine_larger_wins(self):
        counts = {r: 100_000 for r in range(8)}
        budget_mb = 2 * 100_000 * BYTES_PER_EVENT / 1e6
        plan = plan_shards(counts, shards=2, max_memory_mb=budget_mb)
        assert plan.num_shards >= 4
        plan = plan_shards(counts, shards=8, max_memory_mb=1e6)
        assert plan.num_shards == 8

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="no ranks"):
            plan_shards({})
        with pytest.raises(ValueError, match="shard count"):
            plan_shards({0: 1}, shards=0)
        with pytest.raises(ValueError, match="memory bound"):
            plan_shards({0: 1}, max_memory_mb=0)

    def test_zero_event_ranks(self):
        plan = plan_shards({0: 0, 1: 0, 2: 0}, shards=2)
        assert sorted(plan.ranks) == [0, 1, 2]

    def test_describe(self):
        plan = plan_shards({0: 10, 1: 1}, shards=2)
        text = plan.describe()
        assert "2 shards" in text and "10 events" in text

    @given(
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                 max_size=40),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_properties(self, counts, n):
        ranks = {r: c for r, c in enumerate(counts)}
        plan = plan_shards(ranks, shards=n)
        # exact cover, order preserved, contiguous groups
        assert list(plan.ranks) == sorted(ranks)
        assert sum(plan.events) == sum(counts)
        assert all(plan.groups)

    @given(
        st.lists(st.integers(min_value=0, max_value=50_000), min_size=1,
                 max_size=30),
        st.integers(min_value=1, max_value=5_000_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_memory_budget_holds_per_group(self, counts, budget_bytes):
        """Every group fits the budget, down to single-rank granularity."""
        ranks = {r: c for r, c in enumerate(counts)}
        plan = plan_shards(ranks, max_memory_mb=budget_bytes / 1e6)
        assert list(plan.ranks) == sorted(ranks)
        for group, events in zip(plan.groups, plan.events):
            assert (
                events * BYTES_PER_EVENT <= max(budget_bytes, BYTES_PER_EVENT)
                or len(group) == 1
            )


# -- statistics merge algebra ---------------------------------------------


def _tables_for(trace):
    return replay_trace(trace)


@st.composite
def _partition(draw, ranks):
    """Random partition of ``ranks`` into non-empty groups."""
    ranks = list(ranks)
    if len(ranks) == 1:
        return [ranks]
    cuts = draw(
        st.sets(st.integers(1, len(ranks) - 1), max_size=len(ranks) - 1)
    )
    bounds = [0, *sorted(cuts), len(ranks)]
    return [ranks[a:b] for a, b in zip(bounds, bounds[1:])]


class TestStatisticsMergeAlgebra:
    """Shard-merge of profile statistics is grouping-independent.

    The canonical definition merges per-rank partials in ascending
    rank order; any shard grouping pre-merges contiguous runs of that
    sequence, so associativity of the per-column operations (+, min,
    max) makes the result identical — these tests verify it *bitwise*
    on real replayed tables.
    """

    @pytest.fixture(scope="class")
    def replayed(self, fd4_result):
        trace = fd4_result.trace
        small_ranks = trace.ranks[:12]
        from repro.trace.filters import select_ranks

        sub = select_ranks(trace, small_ranks)
        return sub, _tables_for(sub)

    def test_rank_partials_merge_to_full_stats(self, replayed):
        trace, tables = replayed
        n = len(trace.regions)
        direct = FunctionStatistics(trace, tables)
        partials = {r: rank_statistics_arrays(tables[r], n) for r in tables}
        merged = FunctionStatistics.from_partials(trace, partials)
        for col in ("count", "inclusive_sum", "exclusive_sum",
                    "inclusive_min", "inclusive_max"):
            assert np.array_equal(getattr(direct, col), getattr(merged, col))

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_grouping_independence(self, replayed, data):
        """The shard grouping never leaks into the merged statistics.

        Workers hand back *per-rank* partials (never pre-merged group
        sums) and the parent merges them rank-ascending; simulate that
        with a random partition delivered in random shard-completion
        order and demand bitwise equality with the direct computation.
        """
        trace, tables = replayed
        n = len(trace.regions)
        ranks = sorted(tables)
        partials = {r: rank_statistics_arrays(tables[r], n) for r in ranks}
        reference = merge_statistics_arrays(
            [partials[r] for r in ranks], n
        )
        groups = data.draw(_partition(ranks))
        completion_order = data.draw(st.permutations(range(len(groups))))
        delivered: dict[int, dict[str, np.ndarray]] = {}
        for shard in completion_order:
            for r in groups[shard]:
                delivered[r] = partials[r]
        regrouped = merge_statistics_arrays(
            [delivered[r] for r in sorted(delivered)], n
        )
        for col in reference:
            assert np.array_equal(reference[col], regrouped[col]), col

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_pre_merged_groups_stay_exact_where_algebra_allows(
        self, replayed, data
    ):
        """Counts and min/max are associative, so even *pre-merged*
        group results regroup exactly; float sums only approximately —
        the reason the engine ships per-rank partials (see above)."""
        trace, tables = replayed
        n = len(trace.regions)
        ranks = sorted(tables)
        partials = {r: rank_statistics_arrays(tables[r], n) for r in ranks}
        reference = merge_statistics_arrays(
            [partials[r] for r in ranks], n
        )
        groups = data.draw(_partition(ranks))
        group_merges = [
            merge_statistics_arrays([partials[r] for r in g], n)
            for g in groups
        ]
        regrouped = merge_statistics_arrays(group_merges, n)
        for col in ("count", "inclusive_min", "inclusive_max"):
            assert np.array_equal(reference[col], regrouped[col]), col
        for col in ("inclusive_sum", "exclusive_sum"):
            np.testing.assert_allclose(
                reference[col], regrouped[col], rtol=1e-12
            )

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_from_partials_ignores_dict_insertion_order(self, replayed, data):
        trace, tables = replayed
        n = len(trace.regions)
        ranks = sorted(tables)
        partials = {r: rank_statistics_arrays(tables[r], n) for r in ranks}
        shuffled_ranks = data.draw(st.permutations(ranks))
        shuffled = {r: partials[r] for r in shuffled_ranks}
        a = FunctionStatistics.from_partials(trace, partials)
        b = FunctionStatistics.from_partials(trace, shuffled)
        assert np.array_equal(a.inclusive_sum, b.inclusive_sum)
        assert np.array_equal(a.count, b.count)

    def test_from_partials_rejects_region_mismatch(self, replayed):
        trace, tables = replayed
        n = len(trace.regions)
        partials = {
            r: rank_statistics_arrays(tables[r], n + 1) for r in tables
        }
        with pytest.raises(ValueError, match="regions"):
            FunctionStatistics.from_partials(trace, partials)


class TestAssembleSos:
    def _fake_rank(self, rank, n):
        rng = np.random.default_rng(rank)
        t_start = np.sort(rng.uniform(0, 100, n))
        return {
            "t_start": t_start,
            "t_stop": t_start + rng.uniform(0.1, 1.0, n),
            "invocation_row": np.arange(n, dtype=np.int64),
            "sync_time": rng.uniform(0, 0.05, n),
        }

    @given(st.permutations(list(range(5))))
    @settings(max_examples=20, deadline=None)
    def test_union_is_order_independent(self, order):
        cls = default_classifier()
        per_rank = {r: self._fake_rank(r, 4 + r) for r in range(5)}
        shuffled = {r: per_rank[r] for r in order}
        a = assemble_sos(7, per_rank, cls)
        b = assemble_sos(7, shuffled, cls)
        assert a.ranks == b.ranks == list(range(5))
        for r in a.ranks:
            assert np.array_equal(a[r].sos, b[r].sos)
            assert np.array_equal(
                a.segmentation[r].t_start, b.segmentation[r].t_start
            )

    def test_matches_rank_sos_identity(self):
        cls = default_classifier()
        per_rank = {0: self._fake_rank(0, 6)}
        result = assemble_sos(3, per_rank, cls)
        d = per_rank[0]
        assert np.array_equal(
            result[0].sos, (d["t_stop"] - d["t_start"]) - d["sync_time"]
        )
        assert result.segmentation.region == 3


# -- worker knob and engine plumbing ---------------------------------------


class TestShardWorkers:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "3")
        assert shard_workers(8) == 3
        assert shard_workers(2) == 2  # capped at shard count

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "zero")
        with pytest.raises(ValueError, match="integer"):
            shard_workers(4)
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "0")
        with pytest.raises(ValueError, match=">= 1"):
            shard_workers(4)

    def test_default_bounded_by_shards(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_WORKERS", raising=False)
        assert shard_workers(1) == 1


class TestShardEngine:
    def test_requires_exactly_one_source(self):
        plan = ShardPlan(groups=((0,),), events=(1,))
        with pytest.raises(ValueError, match="exactly one"):
            ShardEngine(plan, n_regions=1)

    def test_load_table_unknown_rank(self, tiny_trace):
        session = AnalysisSession(tiny_trace, shards=2)
        session.profile()
        with pytest.raises(KeyError):
            session._shard_engine().load_table(99)

    def test_session_rejects_missing_source(self):
        with pytest.raises(ValueError, match="trace or a source_path"):
            AnalysisSession(None)

    def test_invalid_trace_raises_in_bootstrap(self):
        from repro.trace.builder import TraceBuilder

        tb = TraceBuilder(name="broken")
        tb.region("main")
        p = tb.process(0)
        p.enter(0.0, "main")
        p.enter(1.0, "main")
        p.leave(2.0, "main")  # one enter never closed
        trace = tb.freeze(check_stacks=False)
        session = AnalysisSession(trace, shards=1)
        with pytest.raises(ValueError, match="invalid trace"):
            session.analysis()

    def test_cross_shard_partners_not_flagged(self, fig3):
        # fig3 has point-to-point messages between ranks; slicing ranks
        # into singleton shards must not produce bad-partner issues.
        session = AnalysisSession(fig3, shards=len(fig3.ranks))
        analysis = session.analysis()  # raises if validation failed
        assert analysis.sos.ranks == fig3.ranks

    def test_lazy_tables_mapping(self, tiny_trace):
        session = AnalysisSession(tiny_trace, shards=2)
        profile = session.profile()
        tables = profile.tables
        assert sorted(tables) == tiny_trace.ranks
        assert len(tables) == len(tiny_trace.ranks)
        direct = replay_trace(tiny_trace)
        for rank in tables:
            assert np.array_equal(tables[rank].t_enter, direct[rank].t_enter)
        with pytest.raises(KeyError):
            tables[123]

    def test_session_stats_accounting(self, tiny_trace, tmp_path):
        cache = tmp_path / "cache"
        s1 = AnalysisSession(tiny_trace, shards=2, cache_dir=cache)
        s1.analysis()
        assert s1.stats.computed.get("replay") == len(tiny_trace.ranks)
        s2 = AnalysisSession(tiny_trace, shards=2, cache_dir=cache)
        s2.analysis()
        assert s2.stats.computed.get("replay", 0) == 0
        assert s2.stats.disk_hits.get("replay") == len(tiny_trace.ranks)

    def test_spill_is_session_cache(self, tiny_trace, tmp_path):
        cache = tmp_path / "cache"
        session = AnalysisSession(tiny_trace, shards=2, cache_dir=cache)
        session.analysis()
        keys = session.cache.keys()
        digests = [d for _, d in session.fingerprint.per_rank]
        for digest in digests:
            assert f"inv-{digest}" in keys
            assert f"rankstats-{digest}" in keys
