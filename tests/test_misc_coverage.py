"""Assorted coverage: wall-clock measurement, zoomed raster timeline,
lazy package exports, counter edge cases."""

import time

import numpy as np
import pytest

import repro
from repro.core import analyze_trace
from repro.sim import ops
from repro.sim.engine import simulate
from repro.sim.workloads.synthetic import SyntheticConfig, generate


class TestTopLevelPackage:
    def test_lazy_exports_resolve(self):
        assert callable(repro.analyze_trace)
        assert callable(repro.profile_trace)
        assert repro.Trace is not None
        assert repro.__version__

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_dir_lists_lazy_names(self):
        names = dir(repro)
        assert "analyze_trace" in names
        assert "TraceBuilder" in names


class TestWallClockMeasurement:
    def test_real_time_measurement(self):
        from repro.measure import Measurement

        m = Measurement(name="wall")
        rec = m.process(0)
        with rec.region("main"):
            with rec.region("sleep"):
                time.sleep(0.02)
        trace = m.finish()
        from repro.profiles import profile_trace

        stats = profile_trace(trace).stats
        measured = stats.of("sleep").inclusive_sum
        assert 0.015 <= measured <= 0.5  # generous upper bound for CI


class TestZoomedTimeline:
    def test_raster_zoom_window(self):
        trace = generate(SyntheticConfig(ranks=3, iterations=6, seed=2))
        from repro.viz import render_timeline_png

        d = trace.duration
        full = render_timeline_png(trace, width=400, height=150)
        zoom = render_timeline_png(
            trace, width=400, height=150, t0=d / 3, t1=2 * d / 3
        )
        # Different windows draw different pixels.
        assert not np.array_equal(full.pixels, zoom.pixels)


class TestEngineSampleSemantics:
    def test_sample_default_reads_accumulated(self):
        def program(rank, size):
            yield ops.Compute(1.0, counters={"X": 5.0})
            yield ops.Sample("X")  # engine-accumulated value
            yield ops.Compute(1.0, counters={"X": 7.0})
            yield ops.Sample("X")

        result = simulate(1, program)
        from repro.core.metrics import metric_series

        series = metric_series(result.trace, "X")[0]
        # Two compute-emitted samples + two explicit samples.
        assert list(series.values) == [5.0, 5.0, 12.0, 12.0, 12.0]
        # (final flush adds the last value at program end)

    def test_final_samples_flushed_at_end(self):
        def program(rank, size):
            yield ops.Compute(1.0, counters={"Y": 3.0})
            yield ops.Elapse(2.0)

        result = simulate(1, program)
        from repro.core.metrics import metric_series

        series = metric_series(result.trace, "Y")[0]
        assert series.times[-1] == pytest.approx(3.0)
        assert series.values[-1] == 3.0


class TestAnalysisOnHybridCounters:
    def test_cycles_in_html_report(self):
        from repro.htmlreport import render_html_report
        from repro.sim.workloads import hybrid_openmp

        trace = hybrid_openmp.generate(ranks=4, iterations=4, slow_rank=1)
        analysis = analyze_trace(trace)
        doc = render_html_report(analysis, bins=32)
        assert "PAPI_TOT_CYC" in doc


class TestSegmentationEdge:
    def test_single_iteration_per_rank_not_dominant(self):
        """A function invoked exactly p times fails the 2p criterion,
        matching the paper's exclusion of main-like functions."""
        trace = generate(SyntheticConfig(ranks=4, iterations=1))
        from repro.core import rank_candidates

        names = [c.name for c in rank_candidates(trace)]
        assert "iteration" not in names  # 4 invocations < 8

    def test_two_iterations_exactly_meets_2p(self):
        trace = generate(SyntheticConfig(ranks=4, iterations=2))
        from repro.core import rank_candidates

        names = [c.name for c in rank_candidates(trace)]
        assert "iteration" in names
