"""Tests for chart renderers: timeline, heat maps, counters, profile, ASCII."""

import numpy as np
import pytest

from repro.core import analyze_trace
from repro.profiles import profile_trace, replay_trace
from repro.sim.workloads.synthetic import SyntheticConfig, generate
from repro.viz import (
    heat_image,
    heat_to_ansi,
    match_messages,
    matrix_sparklines,
    nice_ticks,
    region_strip,
    render_analysis,
    render_counter_png,
    render_heat_png,
    render_profile_png,
    render_sos_svg,
    render_timeline_png,
    sparkline,
)
from repro.viz.figure import format_seconds, rank_tick_rows


@pytest.fixture(scope="module")
def viz_trace():
    return generate(
        SyntheticConfig(ranks=6, iterations=8, slow_ranks={2: 1.7}, seed=4)
    )


@pytest.fixture(scope="module")
def viz_analysis(viz_trace):
    return analyze_trace(viz_trace)


class TestFigureHelpers:
    def test_nice_ticks_basic(self):
        ticks = nice_ticks(0.0, 10.0)
        assert ticks[0] >= 0.0 and ticks[-1] <= 10.0
        steps = np.diff(ticks)
        assert np.allclose(steps, steps[0])

    def test_nice_ticks_small_range(self):
        ticks = nice_ticks(0.0, 1e-4)
        assert len(ticks) >= 2

    def test_nice_ticks_degenerate(self):
        assert list(nice_ticks(5.0, 5.0)) == [5.0]

    def test_format_seconds(self):
        assert format_seconds(120.0) == "120s"
        assert format_seconds(1.5) == "1.5s"
        assert format_seconds(0.002) == "2ms"
        assert format_seconds(3e-6) == "3us"
        assert format_seconds(0.0) == "0"

    def test_rank_tick_rows(self):
        assert rank_tick_rows(5) == [0, 1, 2, 3, 4]
        rows = rank_tick_rows(200)
        assert len(rows) <= 17
        assert rows[0] == 0 and rows[-1] == 199
        assert rank_tick_rows(0) == []


class TestHeatImage:
    def test_scaling(self):
        m = np.asarray([[0.0, 1.0]])
        img = heat_image(m, width=10, height=4)
        assert img.shape == (4, 10, 3)
        # Left half cold (blue-ish), right half hot (red-ish).
        assert img[0, 0, 2] > img[0, 0, 0]
        assert img[0, -1, 0] > img[0, -1, 2]

    def test_nan_cells(self):
        m = np.asarray([[np.nan, 1.0]])
        img = heat_image(m, width=2, height=1)
        from repro.viz.colors import NAN_COLOR

        assert tuple(img[0, 0]) == NAN_COLOR

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            heat_image(np.empty((0, 0)), 10, 10)


class TestHeatChart:
    def test_render_heat_png(self, viz_analysis, tmp_path):
        matrix, edges = viz_analysis.heat_matrix(bins=64)
        path = tmp_path / "heat.png"
        canvas = render_heat_png(matrix, edges, path, title="SOS")
        assert path.exists() and path.stat().st_size > 500
        assert canvas.width == 1100

    def test_hot_rank_row_is_red(self, viz_analysis):
        matrix, edges = viz_analysis.heat_matrix(bins=64)
        canvas = render_heat_png(matrix, edges, width=400, height=200)
        from repro.viz.figure import ChartLayout

        layout = ChartLayout(width=400, height=200)
        # Sample a pixel in the hot rank's row (rank 2 of 6) vs rank 0.
        y_hot = layout.plot_y + int(2.5 * layout.plot_h / 6)
        y_cold = layout.plot_y + int(0.5 * layout.plot_h / 6)
        x = layout.plot_x + layout.plot_w // 2
        hot = canvas.pixels[y_hot, x]
        cold = canvas.pixels[y_cold, x]
        assert int(hot[0]) - int(hot[2]) > 50  # red dominant
        assert int(cold[2]) - int(cold[0]) > 50  # blue dominant


class TestTimeline:
    def test_region_strip_painter_order(self, fig1):
        tables = replay_trace(fig1)
        strip = region_strip(tables[0], 0.0, 6.0, 6)
        foo = fig1.regions.id_of("foo")
        bar = fig1.regions.id_of("bar")
        assert list(strip) == [foo, foo, bar, bar, foo, foo]

    def test_region_strip_idle(self, fig1):
        tables = replay_trace(fig1)
        strip = region_strip(tables[0], 0.0, 12.0, 12)
        assert strip[-1] == -1  # after the program ends

    def test_render_timeline(self, viz_trace, tmp_path):
        path = tmp_path / "tl.png"
        render_timeline_png(viz_trace, path)
        assert path.exists() and path.stat().st_size > 500

    def test_render_timeline_with_messages(self, viz_trace, tmp_path):
        path = tmp_path / "tlm.png"
        render_timeline_png(viz_trace, path, show_messages=True)
        assert path.exists()

    def test_empty_trace_rejected(self):
        from repro.trace.trace import Trace

        with pytest.raises(ValueError, match="empty"):
            render_timeline_png(Trace(name="none"))

    def test_match_messages(self, viz_trace):
        messages = match_messages(viz_trace, limit=100)
        assert messages
        for src, t_send, dst, t_recv in messages:
            assert t_recv >= t_send
            assert src != dst

    def test_match_messages_limit(self, viz_trace):
        assert len(match_messages(viz_trace, limit=5)) == 5


class TestCounterAndProfileCharts:
    def test_counter_chart(self, viz_trace, tmp_path):
        path = tmp_path / "cyc.png"
        render_counter_png(viz_trace, "PAPI_TOT_CYC", path, bins=64)
        assert path.exists()

    def test_profile_chart(self, viz_trace, tmp_path):
        stats = profile_trace(viz_trace).stats
        path = tmp_path / "prof.png"
        render_profile_png(stats, path, k=5)
        assert path.exists()

    def test_profile_inclusive_variant(self, viz_trace):
        stats = profile_trace(viz_trace).stats
        canvas = render_profile_png(stats, metric="inclusive")
        assert canvas.width == 760

    def test_profile_bad_metric(self, viz_trace):
        stats = profile_trace(viz_trace).stats
        with pytest.raises(ValueError):
            render_profile_png(stats, metric="typo")


class TestSOSSvg:
    def test_svg_written(self, viz_analysis, tmp_path):
        path = tmp_path / "sos.svg"
        render_sos_svg(viz_analysis, path)
        content = path.read_text()
        assert "<svg" in content
        assert "SOS" in content
        assert content.count("<rect") > 6 * 8  # one per segment plus chrome

    def test_tooltips_present(self, viz_analysis):
        svg = render_sos_svg(viz_analysis)
        assert "rank 2, segment" in svg.tostring()


class TestAsciiArt:
    def test_heat_to_ansi(self):
        matrix = np.asarray([[0.0, 1.0], [np.nan, 0.5]])
        text = heat_to_ansi(matrix)
        assert "\x1b[48;5;" in text
        assert "·" in text
        assert "min=0" in text

    def test_heat_to_ansi_empty(self):
        assert heat_to_ansi(np.empty((0, 0))) == "(empty)"

    def test_sparkline(self):
        line = sparkline(np.asarray([0.0, 0.5, 1.0]))
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_nan(self):
        assert " " in sparkline(np.asarray([0.0, np.nan, 1.0]))

    def test_sparkline_downsamples(self):
        assert len(sparkline(np.arange(500.0), width=40)) == 40

    def test_matrix_sparklines(self):
        text = matrix_sparklines(np.random.default_rng(0).random((5, 20)))
        assert len(text.splitlines()) == 5


class TestRenderAnalysis:
    def test_writes_all_views(self, viz_analysis, tmp_path):
        written = render_analysis(viz_analysis, tmp_path / "views", bins=64)
        expected = {
            "timeline",
            "sos_heatmap",
            "sos_heatmap_svg",
            "duration_heatmap",
            "profile",
            "counter_PAPI_TOT_CYC",
        }
        assert expected <= set(written)
        import os

        for path in written.values():
            assert os.path.getsize(path) > 200


class TestTimelineSvg:
    def test_svg_written_with_tooltips(self, viz_trace, tmp_path):
        from repro.viz import render_timeline_svg

        path = tmp_path / "tl.svg"
        svg = render_timeline_svg(viz_trace, path, show_messages=True)
        content = path.read_text()
        assert "<svg" in content
        assert "<title>" in content  # invocation tooltips
        assert "work" in content

    def test_zoom_window(self, viz_trace):
        from repro.viz import render_timeline_svg

        d = viz_trace.duration
        svg = render_timeline_svg(viz_trace, t0=0.0, t1=d / 4)
        full = render_timeline_svg(viz_trace)
        # Zoomed view shows fewer or equal rects than the full view.
        assert svg.tostring().count("<rect") <= full.tostring().count("<rect")

    def test_max_rects_cap(self, viz_trace):
        from repro.viz import render_timeline_svg

        capped = render_timeline_svg(viz_trace, max_rects=20)
        assert capped.tostring().count("<rect") <= 20 + 40  # + chrome

    def test_empty_trace_rejected(self):
        from repro.trace.trace import Trace
        from repro.viz import render_timeline_svg

        with pytest.raises(ValueError, match="empty"):
            render_timeline_svg(Trace(name="none"))

    def test_depth_culling(self, viz_trace):
        from repro.viz import render_timeline_svg

        shallow = render_timeline_svg(viz_trace, max_depth=1)
        deep = render_timeline_svg(viz_trace, max_depth=10)
        assert (
            shallow.tostring().count("<rect")
            <= deep.tostring().count("<rect")
        )
