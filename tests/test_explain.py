"""Tests for the segment drill-down (explain_segment)."""

import pytest

from repro.core import analyze_trace, explain_segment
from repro.sim.workloads.synthetic import SyntheticConfig, generate


@pytest.fixture(scope="module")
def outlier_analysis():
    trace = generate(
        SyntheticConfig(ranks=6, iterations=8, outliers={(2, 5): 0.05}, seed=5)
    )
    return analyze_trace(trace)


class TestExplainSegment:
    def test_identifies_culprit_region(self, outlier_analysis):
        exp = explain_segment(outlier_analysis, 2, 5)
        culprit = exp.dominant_excess()
        assert culprit is not None
        assert culprit.name == "work"
        assert culprit.excess == pytest.approx(0.05, rel=0.05)

    def test_breakdown_sums_into_duration(self, outlier_analysis):
        exp = explain_segment(outlier_analysis, 2, 5)
        total_exclusive = sum(r.exclusive for r in exp.regions)
        # Exclusive times inside the segment tile its duration (the
        # dominant region's own exclusive time is included as 0+).
        assert total_exclusive == pytest.approx(exp.duration, rel=1e-6)

    def test_sos_and_sync_consistent(self, outlier_analysis):
        exp = explain_segment(outlier_analysis, 2, 5)
        assert exp.sos + exp.sync_time == pytest.approx(exp.duration)

    def test_normal_segment_has_no_excess(self, outlier_analysis):
        exp = explain_segment(outlier_analysis, 0, 2)
        culprit = exp.dominant_excess()
        assert culprit is None or culprit.excess < 0.001

    def test_typical_values_from_peers(self, outlier_analysis):
        exp = explain_segment(outlier_analysis, 2, 5)
        work = next(r for r in exp.regions if r.name == "work")
        assert work.typical_elsewhere == pytest.approx(0.01, rel=0.05)

    def test_counter_rates_present(self, outlier_analysis):
        exp = explain_segment(outlier_analysis, 2, 5)
        assert "PAPI_TOT_CYC" in exp.counter_rates
        assert exp.counter_rates["PAPI_TOT_CYC"] > 0
        assert "PAPI_TOT_CYC" in exp.typical_counter_rates

    def test_counter_rate_drop_on_interruption(self, outlier_analysis):
        """The outlier is an interruption: wall time without cycles.

        At the coarse 'iteration' level peers wait inside MPI for the
        slow rank, so their cycle rates drop identically — the
        discrimination only appears at the finer 'work' segmentation,
        where peers contain no waiting (the Figure-5c workflow).
        """
        fine = outlier_analysis.at_function("work")
        exp = explain_segment(fine, 2, 5)
        rate = exp.counter_rates["PAPI_TOT_CYC"]
        typical = exp.typical_counter_rates["PAPI_TOT_CYC"]
        assert rate < 0.5 * typical

    def test_format(self, outlier_analysis):
        text = explain_segment(outlier_analysis, 2, 5).format()
        assert "segment 5 on rank 2" in text
        assert "work" in text
        assert "focus there" in text

    def test_index_out_of_range(self, outlier_analysis):
        with pytest.raises(IndexError):
            explain_segment(outlier_analysis, 2, 99)

    def test_share_fractions(self, outlier_analysis):
        exp = explain_segment(outlier_analysis, 2, 5)
        for region in exp.regions:
            assert 0.0 <= region.share <= 1.0 + 1e-9


class TestExplainCli:
    def test_cli_defaults_to_hottest(self, tmp_path, capsys):
        from repro.cli import main
        from repro.trace import write_binary

        trace = generate(
            SyntheticConfig(ranks=6, iterations=8, outliers={(2, 5): 0.05},
                            seed=5)
        )
        path = tmp_path / "t.rpt"
        write_binary(trace, path)
        assert main(["explain", str(path)]) == 0
        out = capsys.readouterr().out
        assert "segment 5 on rank 2" in out

    def test_cli_explicit_target(self, tmp_path, capsys):
        from repro.cli import main
        from repro.trace import write_binary

        trace = generate(SyntheticConfig(ranks=4, iterations=6, seed=1))
        path = tmp_path / "t.rpt"
        write_binary(trace, path)
        assert main(["explain", str(path), "--rank", "1",
                     "--segment", "2"]) == 0
        assert "segment 2 on rank 1" in capsys.readouterr().out

    def test_cli_no_findings_without_target(self, tmp_path, capsys):
        from repro.cli import main
        from repro.trace import write_binary

        trace = generate(SyntheticConfig(ranks=4, iterations=6, seed=1))
        path = tmp_path / "t.rpt"
        write_binary(trace, path)
        assert main(["explain", str(path)]) == 1
