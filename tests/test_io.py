"""Round-trip and error tests for trace serialisation."""

import io

import pytest

from repro.trace import read_binary, read_jsonl, read_trace, write_binary, write_jsonl
from repro.trace.binio import BinaryFormatError
from repro.trace.reader import TraceFormatError, load_jsonl
from repro.trace.writer import dump_jsonl


def traces_equal(a, b) -> bool:
    if a.name != b.name or a.attributes != b.attributes:
        return False
    if a.ranks != b.ranks:
        return False
    if [r.name for r in a.regions] != [r.name for r in b.regions]:
        return False
    if [(m.name, m.unit, m.mode) for m in a.metrics] != [
        (m.name, m.unit, m.mode) for m in b.metrics
    ]:
        return False
    return all(a.events_of(r) == b.events_of(r) for r in a.ranks)


class TestJsonlRoundtrip:
    def test_figure_trace(self, fig3, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(fig3, path)
        assert traces_equal(fig3, read_jsonl(path))

    def test_trace_with_metrics_and_messages(self, tiny_trace, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(tiny_trace, path)
        back = read_jsonl(path)
        assert traces_equal(tiny_trace, back)
        assert back.metrics.id_of("CYC") == 0

    def test_stream_roundtrip(self, fig1):
        buf = io.StringIO()
        dump_jsonl(fig1, buf)
        buf.seek(0)
        assert traces_equal(fig1, load_jsonl(buf))

    def test_empty_file_rejected(self):
        with pytest.raises(TraceFormatError, match="empty"):
            load_jsonl(io.StringIO(""))

    def test_missing_header_rejected(self):
        with pytest.raises(TraceFormatError, match="header"):
            load_jsonl(io.StringIO('{"record": "region"}\n'))

    def test_bad_version_rejected(self):
        with pytest.raises(TraceFormatError, match="version"):
            load_jsonl(io.StringIO('{"record": "header", "version": 99}\n'))

    def test_unknown_record_rejected(self, fig1):
        buf = io.StringIO()
        dump_jsonl(fig1, buf)
        content = buf.getvalue() + '{"record": "mystery"}\n'
        with pytest.raises(TraceFormatError, match="unknown record"):
            load_jsonl(io.StringIO(content))

    def test_events_for_undefined_location(self):
        content = (
            '{"record": "header", "version": 1, "name": "x", "attributes": {}}\n'
            '{"record": "events", "location": 7, "n": 0, "time": [], "kind": [],'
            ' "ref": [], "partner": [], "size": [], "tag": [], "value": []}\n'
        )
        with pytest.raises(TraceFormatError, match="undefined location"):
            load_jsonl(io.StringIO(content))

    def test_location_without_events_gets_empty_stream(self, tmp_path):
        content = (
            '{"record": "header", "version": 1, "name": "x", "attributes": {}}\n'
            '{"record": "location", "id": 0, "name": "P0", "group": "MPI"}\n'
        )
        path = tmp_path / "t.jsonl"
        path.write_text(content)
        trace = read_jsonl(path)
        assert trace.ranks == [0]
        assert len(trace.events_of(0)) == 0


class TestBinaryRoundtrip:
    def test_figure_trace(self, fig3, tmp_path):
        path = tmp_path / "t.rpt"
        write_binary(fig3, path)
        assert traces_equal(fig3, read_binary(path))

    def test_metrics_and_attributes(self, tiny_trace, tmp_path):
        path = tmp_path / "t.rpt"
        write_binary(tiny_trace, path, compresslevel=1)
        assert traces_equal(tiny_trace, read_binary(path))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rpt"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(BinaryFormatError, match="magic"):
            read_binary(path)

    def test_truncation_detected(self, fig2, tmp_path):
        path = tmp_path / "t.rpt"
        write_binary(fig2, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 40])
        with pytest.raises(Exception):
            read_binary(path)

    def test_binary_smaller_than_jsonl_for_large_traces(self, tmp_path):
        from repro.sim.workloads.synthetic import SyntheticConfig, generate

        trace = generate(SyntheticConfig(ranks=8, iterations=30))
        jpath = tmp_path / "t.jsonl"
        bpath = tmp_path / "t.rpt"
        write_jsonl(trace, jpath)
        write_binary(trace, bpath)
        assert bpath.stat().st_size < jpath.stat().st_size


class TestReadTraceDispatch:
    def test_jsonl_extension(self, fig1, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(fig1, path)
        assert traces_equal(fig1, read_trace(path))

    def test_rpt_extension(self, fig1, tmp_path):
        path = tmp_path / "t.rpt"
        write_binary(fig1, path)
        assert traces_equal(fig1, read_trace(path))

    def test_unknown_extension(self, tmp_path):
        with pytest.raises(TraceFormatError, match="extension"):
            read_trace(tmp_path / "t.xyz")


class TestWritabilityPolicy:
    """Every load path returns frozen column arrays.

    The v2 mmap fast path serves ``np.frombuffer`` views of the file
    mapping, which are inherently read-only; rather than letting
    mutability depend on which reader happened to produce the arrays,
    ``EventList`` freezes every column on construction.  In-place
    mutation must raise the same ``ValueError`` on all paths, and an
    explicit ``np.array(col)`` copy must stay writable.
    """

    def _write_all(self, trace, tmp_path):
        jsonl = tmp_path / "t.jsonl"
        v1 = tmp_path / "v1.rpt"
        v2 = tmp_path / "v2.rpt"
        write_jsonl(trace, jsonl)
        write_binary(trace, v1, version=1)
        write_binary(trace, v2, version=2, codec="raw")
        return [jsonl, v1, v2]

    def _loads(self, path):
        from repro.trace.reader import TraceIndex

        yield read_trace(path)
        yield TraceIndex(path).load()

    def test_all_paths_read_only(self, fig1, tmp_path):
        import numpy as np

        for path in self._write_all(fig1, tmp_path):
            for trace in self._loads(path):
                for rank in trace.ranks:
                    events = trace.events_of(rank)
                    for name in events.loaded_columns:
                        col = getattr(events, name)
                        assert not col.flags.writeable, (path.name, name)
                        with pytest.raises(
                            ValueError, match="read-only"
                        ):
                            col[...] = col
                        copy = np.array(col)
                        assert copy.flags.writeable

    def test_mmap_disabled_path_read_only(self, fig1, tmp_path, monkeypatch):
        from repro.trace.reader import TraceIndex

        monkeypatch.setenv("REPRO_NO_MMAP", "1")
        path = tmp_path / "v2.rpt"
        write_binary(fig1, path, version=2, codec="raw")
        trace = TraceIndex(path).load()
        for rank in trace.ranks:
            events = trace.events_of(rank)
            for name in events.loaded_columns:
                assert not getattr(events, name).flags.writeable

    def test_projected_load_read_only(self, fig1, tmp_path):
        from repro.trace.reader import TraceIndex

        path = tmp_path / "v2.rpt"
        write_binary(fig1, path, version=2)
        trace = TraceIndex(path).load(None, columns=("time", "kind", "ref"))
        for rank in trace.ranks:
            events = trace.events_of(rank)
            for name in events.loaded_columns:
                assert not getattr(events, name).flags.writeable


class TestIndexLifetime:
    """TraceIndex.close() releases the shared mmap deterministically.

    The map otherwise lives until the last zero-copy view dies, which
    on Windows locks the trace file against deletion/replacement; the
    explicit close (and context-manager form) gives tools that rewrite
    traces in place a way out. Closing under outstanding views must
    fail loudly, not invalidate them.
    """

    def _v2_raw(self, trace, tmp_path):
        path = tmp_path / "v2.rpt"
        write_binary(trace, path, version=2, codec="raw")
        return path

    def test_close_without_views(self, fig1, tmp_path):
        from repro.trace.reader import TraceIndex

        index = TraceIndex(self._v2_raw(fig1, tmp_path))
        index.close()  # no map created yet: no-op
        loaded = index.load()
        del loaded
        index.close()
        # the index stays usable: the next load re-maps
        reloaded = index.load()
        assert traces_equal(reloaded, fig1)
        del reloaded
        index.close()

    def test_close_with_outstanding_views_raises(self, fig1, tmp_path):
        import numpy as np

        from repro.trace.reader import TraceIndex

        index = TraceIndex(self._v2_raw(fig1, tmp_path))
        trace = index.load()
        if index._buffer() is None:
            pytest.skip("mmap unavailable on this platform")
        with pytest.raises(BufferError):
            index.close()
        # the failed close must not have invalidated the views
        times = np.concatenate([trace.events_of(r).time for r in trace.ranks])
        assert len(times) == trace.num_events
        del trace, times
        index.close()

    def test_context_manager(self, fig1, tmp_path):
        from repro.trace.reader import TraceIndex

        with TraceIndex(self._v2_raw(fig1, tmp_path)) as index:
            trace = index.load()
            n = trace.num_events
            del trace
        assert n == fig1.num_events
