"""Tests for the cross-rank happens-before analyzer (TL3xx).

Covers: p2p queue-order matching (FIFO, wildcards, orphans), the
vector-clock engine's causality answers, each TL3xx rule on a minimal
positive and negative fixture, the adversarial fuzz planters, the
engine routing guarantees (hb rules always see all ranks, column
projection includes the hb extras), shard-count determinism, the
golden-corpus silence contract, graph export and the ``repro deps`` /
``fuzz --adversarial`` CLI.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lint import (
    LintConfig,
    lint_path,
    lint_trace,
    match_graph_for_trace,
    graph_to_dot,
    graph_to_json_dict,
    hb_graph_path,
    hb_rules_enabled,
)
from repro.lint.engine import finalize_report, lint_columns
from repro.lint.hb import HBView, MatchGraph, match_records_for_trace
from repro.sim.fuzz import (
    ADVERSARY_EXPECT,
    ADVERSARY_KINDS,
    build_adversarial_traces,
    generate_adversarial,
    run_adversarial_oracle,
)
from repro.trace import write_jsonl
from repro.trace.builder import TraceBuilder
from repro.trace.definitions import Paradigm

HB_SELECT = LintConfig(select=("TL3*",))


def codes(report):
    return {d.code for d in report.diagnostics}


def ping_trace(pairs, tag=1, name="ping"):
    """One matched send/recv per (src, dst) pair, time-ordered."""
    tb = TraceBuilder(name=name)
    t = 0.0
    for src, dst in pairs:
        t += 1.0
        tb.process(src).send(t, dst, size=8, tag=tag)
        tb.process(dst).recv(t + 0.5, src, size=8, tag=tag)
    return tb.freeze(check_stacks=False)


def deadlock_trace(perm=(0, 1, 2, 3)):
    """Logical ranks 0/1 deadlock; 2 -> 3 is a healthy ping.

    ``perm`` relabels logical to physical ranks so the permutation
    invariance of the diagnostics can be property-tested.
    """
    tb = TraceBuilder(name="dl")
    a, b, c, d = perm
    # a and b each send tag 1 but wait for tag 2 — classic crossed pair.
    tb.process(a).send(1.0, b, size=4, tag=1)
    tb.process(a).recv(2.0, b, size=4, tag=2)
    tb.process(b).send(1.0, a, size=4, tag=1)
    tb.process(b).recv(2.0, a, size=4, tag=2)
    tb.process(c).send(1.0, d, size=4, tag=1)
    tb.process(d).recv(1.5, c, size=4, tag=1)
    return tb.freeze(check_stacks=False)


def wildcard_trace(relay: bool):
    """Rank 0 wildcard-receives; ranks 1 and 2 send tag 5.

    With ``relay=True`` rank 2's send is causally *after* the wildcard
    receive (rank 0 acks rank 1's message to rank 2 first), so the
    vector-clock engine must prove the match cannot race.  Without the
    relay the two sends are concurrent and TL302 must fire.
    """
    tb = TraceBuilder(name="wc")
    tb.process(1).send(0.5, 0, size=4, tag=5)
    tb.process(0).recv(1.0, -1, size=4, tag=5)  # wildcard
    if relay:
        tb.process(0).send(1.5, 2, size=4, tag=9)
        tb.process(2).recv(2.0, 0, size=4, tag=9)
    tb.process(2).send(2.5, 0, size=4, tag=5)  # never received
    return tb.freeze(check_stacks=False)


def collective_trace(diverge: bool):
    tb = TraceBuilder(name="coll")
    tb.region("MPI_Barrier", paradigm=Paradigm.MPI)
    tb.region("MPI_Allreduce", paradigm=Paradigm.MPI)
    order = {0: ("MPI_Barrier", "MPI_Allreduce"),
             1: ("MPI_Barrier", "MPI_Allreduce"),
             2: ("MPI_Barrier", "MPI_Allreduce")}
    if diverge:
        order[2] = ("MPI_Allreduce", "MPI_Barrier")
    for rank, seq in order.items():
        p = tb.process(rank)
        t = 0.0
        for op in seq:
            p.call(t, t + 0.5, op)
            t += 1.0
    return tb.freeze()


class TestMatching:
    def test_ring_fully_matched(self):
        n = 4
        g = match_graph_for_trace(
            ping_trace([(r, (r + 1) % n) for r in range(n)])
        )
        assert g.complete
        assert g.num_sends == g.num_recvs == g.num_matched == n
        assert np.all(g.s_match >= 0) and np.all(g.r_match >= 0)

    def test_fifo_queue_order(self):
        # Two same-channel messages: k-th send pairs with k-th recv
        # even though the second recv is timestamped first-looking.
        tb = TraceBuilder(name="fifo")
        tb.process(0).send(1.0, 1, size=1, tag=7)
        tb.process(0).send(2.0, 1, size=2, tag=7)
        tb.process(1).recv(3.0, 0, size=1, tag=7)
        tb.process(1).recv(4.0, 0, size=2, tag=7)
        g = match_graph_for_trace(tb.freeze(check_stacks=False))
        assert g.num_matched == 2
        # send i (by time) matched recv i (by stream position)
        order = np.argsort(g.s_time)
        assert list(g.r_pos[g.s_match[order]]) == sorted(
            g.r_pos[g.s_match[order]]
        )

    def test_wildcard_matches_leftover_send(self):
        g = match_graph_for_trace(wildcard_trace(relay=False))
        wild = np.flatnonzero(g.r_wildcard)
        assert len(wild) == 1
        assert g.r_match[wild[0]] >= 0
        assert int(g.s_rank[g.r_match[wild[0]]]) == 1

    def test_orphans_stay_unmatched(self):
        tb = TraceBuilder(name="orphan")
        tb.process(0).send(1.0, 1, size=4, tag=3)
        tb.process(1).recv(2.0, 0, size=4, tag=4)  # wrong tag
        g = match_graph_for_trace(tb.freeze(check_stacks=False))
        assert g.num_matched == 0

    def test_incomplete_graph_on_broken_stream(self):
        tb = TraceBuilder(name="broken")
        tb.region("main")
        tb.process(0).send(1.0, 1, size=4, tag=1)
        tb.process(1).recv(2.0, 0, size=4, tag=1)
        trace = tb.freeze(check_stacks=False)
        ev = trace.events_of(0)
        ev.time.setflags(write=True)
        ev.time[:] = [5.0]  # fine: single event stays sorted
        ev.time.setflags(write=False)
        # Force an unbalanced stream on rank 1 instead: a lone LEAVE.
        tb2 = TraceBuilder(name="broken2")
        tb2.region("main")
        p = tb2.process(0)
        p.enter(0.0, "main")
        p.send(1.0, 1, size=4, tag=1)
        p.leave(2.0, "main")
        p1 = tb2.process(1)
        p1.enter(0.0, "main")
        p1.recv(1.5, 0, size=4, tag=1)
        # main never left on rank 1 -> unbalanced
        trace2 = tb2.freeze(check_stacks=False)
        g = match_graph_for_trace(trace2)
        assert not g.complete
        report = lint_trace(trace2, config=HB_SELECT)
        assert codes(report) == set()  # TL3xx mute on incomplete graphs

    def test_records_shard_independent(self):
        trace = ping_trace([(0, 1), (1, 2), (2, 0)])
        records, _ = match_records_for_trace(trace)
        assert sorted(records) == [0, 1, 2]
        for rank, rec in records.items():
            assert rec.ok and rec.rank == rank


class TestVectorClocks:
    def test_send_happens_before_matched_recv(self):
        trace = ping_trace([(0, 1)])
        g = match_graph_for_trace(trace)
        records, shared = match_records_for_trace(trace)
        engine = HBView(shared, g).engine
        s = 0
        r = int(g.s_match[s])
        assert engine.happens_before(engine.vc_send[s], engine.vc_recv[r])
        assert not engine.happens_before(
            engine.vc_recv[r], engine.vc_send[s]
        )

    def test_disjoint_pairs_concurrent(self):
        trace = ping_trace([(0, 1), (2, 3)])
        g = match_graph_for_trace(trace)
        _, shared = match_records_for_trace(trace)
        engine = HBView(shared, g).engine
        a = int(np.flatnonzero(g.s_rank == 0)[0])
        b = int(np.flatnonzero(g.s_rank == 2)[0])
        assert engine.concurrent(engine.vc_send[a], engine.vc_send[b])


class TestRules:
    def test_tl301_deadlock_cycle(self):
        report = lint_trace(deadlock_trace(), config=HB_SELECT)
        assert "TL301" in codes(report)
        [diag] = [d for d in report.diagnostics if d.code == "TL301"]
        assert "rank 0 -> rank 1 -> rank 0" in diag.message

    def test_tl301_silent_on_ring(self):
        report = lint_trace(
            ping_trace([(r, (r + 1) % 4) for r in range(4)]),
            config=HB_SELECT,
        )
        assert "TL301" not in codes(report)

    def test_tl302_concurrent_senders_race(self):
        report = lint_trace(wildcard_trace(relay=False), config=HB_SELECT)
        assert "TL302" in codes(report)

    def test_tl302_causally_ordered_is_silent(self):
        # Same shape, but rank 2's send is provably after the wildcard
        # receive completed — only the vector clocks can tell these
        # two traces apart.
        report = lint_trace(wildcard_trace(relay=True), config=HB_SELECT)
        assert "TL302" not in codes(report)

    def test_tl303_collective_divergence(self):
        report = lint_trace(collective_trace(diverge=True), config=HB_SELECT)
        [diag] = [d for d in report.diagnostics if d.code == "TL303"]
        assert "epoch 0" in diag.message
        assert "MPI_Allreduce" in diag.message

    def test_tl303_silent_on_agreement(self):
        report = lint_trace(collective_trace(diverge=False), config=HB_SELECT)
        assert "TL303" not in codes(report)

    def test_tl304_orphan_channel_aggregated(self):
        tb = TraceBuilder(name="orphans")
        tb.process(0).send(1.0, 1, size=4, tag=3)
        tb.process(0).send(2.0, 1, size=4, tag=3)
        tb.process(1).recv(3.0, 0, size=4, tag=4)
        report = lint_trace(tb.freeze(check_stacks=False), config=HB_SELECT)
        tl304 = [d for d in report.diagnostics if d.code == "TL304"]
        # one finding per channel, not per message
        assert len(tl304) == 2
        assert any("2 send(s)" in d.message for d in tl304)

    def test_tl304_silent_on_matched(self):
        report = lint_trace(ping_trace([(0, 1)]), config=HB_SELECT)
        assert "TL304" not in codes(report)

    def test_rules_registered_with_hb_scope(self):
        from repro.lint import all_rules

        tl3 = [r for r in all_rules() if r.code.startswith("TL3")]
        assert [r.code for r in tl3] == [
            "TL301", "TL302", "TL303", "TL304", "TL305",
        ]
        assert all(r.scope == "hb" and r.category == "hb" for r in tl3)
        assert all(set(r.columns) == {"tag", "size"} for r in tl3)

    @settings(max_examples=20, deadline=None)
    @given(perm=st.permutations(list(range(4))))
    def test_diagnostics_invariant_under_rank_relabeling(self, perm):
        report = lint_trace(deadlock_trace(tuple(perm)), config=HB_SELECT)
        baseline = lint_trace(deadlock_trace(), config=HB_SELECT)
        # Same rules fire the same number of times for any labeling...
        by_code = lambda rep: sorted(  # noqa: E731
            (d.code, d.severity) for d in rep.diagnostics
        )
        assert by_code(report) == by_code(baseline)
        # ...and the cycle follows the relabeled ranks.
        [diag] = [d for d in report.diagnostics if d.code == "TL301"]
        assert diag.rank == min(perm[0], perm[1])


class TestAdversarial:
    @pytest.mark.parametrize("seed", range(len(ADVERSARY_KINDS)))
    def test_each_planted_defect_detected(self, seed):
        scenario = generate_adversarial(seed)
        healthy, planted = build_adversarial_traces(scenario)
        expected = ADVERSARY_EXPECT[scenario.kind]
        assert expected in codes(lint_trace(planted, config=HB_SELECT))
        assert codes(lint_trace(healthy, config=HB_SELECT)) == set()

    def test_oracle_reports_ok(self):
        report = run_adversarial_oracle(generate_adversarial(0))
        assert report.ok, report.failures


class TestEngineRouting:
    def test_hb_rules_run_by_default(self):
        report = lint_trace(ping_trace([(0, 1)]))
        assert {"TL301", "TL305"} <= set(report.rules_run)

    def test_hb_rules_ignorable(self):
        config = LintConfig(ignore=("TL3*",))
        assert not hb_rules_enabled(config)
        report = lint_trace(ping_trace([(0, 1)]), config=config)
        assert not any(c.startswith("TL3") for c in report.rules_run)

    def test_projection_includes_hb_columns(self):
        # Regression: the worker column union must cover hb extras even
        # when no *rank*-scoped rule needs them.
        cols = lint_columns(LintConfig(select=("TL301",)))
        assert "tag" in cols and "size" in cols

    def test_finalize_refuses_partial_records(self):
        trace = ping_trace([(0, 1), (1, 2)])
        records, shared = match_records_for_trace(trace)
        from repro.lint.engine import RankView, scan_view

        diags, summaries = [], {}
        for rank in trace.ranks:
            d, s = scan_view(RankView(shared, rank, trace.events_of(rank)))
            diags.extend(d)
            summaries[rank] = s
        with pytest.raises(ValueError, match="partial trace"):
            finalize_report(shared, diags, summaries, match_records=None)
        del records[1]
        with pytest.raises(ValueError, match=r"ranks \[1\]"):
            finalize_report(
                shared, diags, summaries, match_records=records
            )


class TestDeterminism:
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_shard_matrix_byte_identical(self, tmp_path, shards):
        scenario = generate_adversarial(0)
        _, planted = build_adversarial_traces(scenario)
        path = tmp_path / "planted.jsonl"
        write_jsonl(planted, path)
        sharded = lint_path(path, config=HB_SELECT, shards=shards)
        baseline = lint_trace(planted, config=HB_SELECT, source=str(path))
        assert sharded.to_json() == baseline.to_json()
        assert "TL301" in codes(sharded)

    def test_hb_graph_path_matches_in_memory(self, tmp_path):
        trace = ping_trace([(r, (r + 1) % 5) for r in range(5)])
        path = tmp_path / "ring.jsonl"
        write_jsonl(trace, path)
        for shards in (1, 3):
            g = hb_graph_path(path, shards=shards)
            assert graph_to_json_dict(g) == graph_to_json_dict(
                match_graph_for_trace(trace)
            )


from pathlib import Path  # noqa: E402

GOLDEN_TRACES = sorted((Path(__file__).parent / "golden").glob("*.jsonl"))


class TestGoldenSilence:
    @pytest.mark.parametrize(
        "path", GOLDEN_TRACES, ids=[p.stem for p in GOLDEN_TRACES]
    )
    def test_no_tl3xx_on_golden_corpus(self, path):
        report = lint_path(path, config=HB_SELECT)
        assert codes(report) == set(), report.to_text()


class TestExport:
    def test_json_schema(self):
        g = match_graph_for_trace(deadlock_trace())
        doc = graph_to_json_dict(g)
        assert doc["tool"] == "repro deps"
        assert doc["complete"] is True
        assert {r["rank"] for r in doc["ranks"]} == {0, 1, 2, 3}
        chan = {
            (c["src"], c["dst"], c["tag"]): c for c in doc["channels"]
        }
        assert chan[(0, 1, 1)]["orphan_sends"] == 1
        assert chan[(1, 0, 2)]["orphan_recvs"] == 1
        assert chan[(2, 3, 1)]["matched"] == 1

    def test_dot_output(self):
        g = match_graph_for_trace(deadlock_trace())
        dot = graph_to_dot(g)
        assert dot.startswith("digraph deps {")
        assert 'color="red"' in dot  # orphan channels highlighted
        assert "r2 -> r3" in dot


class TestCLI:
    def run(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_deps_json(self, tmp_path, capsys):
        trace = ping_trace([(0, 1)])
        path = tmp_path / "t.jsonl"
        write_jsonl(trace, path)
        assert self.run("deps", str(path), "--format", "json") == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "repro deps" and doc["complete"]

    def test_deps_dot_to_file(self, tmp_path, capsys):
        trace = ping_trace([(0, 1)])
        path = tmp_path / "t.jsonl"
        write_jsonl(trace, path)
        out = tmp_path / "deps.dot"
        assert self.run("deps", str(path), "-o", str(out)) == 0
        assert out.read_text().startswith("digraph deps {")

    def test_deps_missing_file(self, capsys):
        from repro.cli import main

        assert main(["deps", "/no/such/trace.jsonl"]) == 2

    def test_fuzz_adversarial_smoke(self, capsys):
        assert self.run("fuzz", "--adversarial", "--runs", "1") == 0
        assert "1/1 scenarios OK" in capsys.readouterr().out
