"""Unit tests for definition registries."""

import pytest

from repro.trace.definitions import (
    Location,
    Metric,
    MetricMode,
    MetricRegistry,
    Paradigm,
    Region,
    RegionRegistry,
    RegionRole,
    default_role,
)


class TestDefaultRole:
    def test_mpi_sync_operations(self):
        for name in ("MPI_Barrier", "MPI_Wait", "MPI_Waitall", "MPI_Test"):
            assert default_role(name, Paradigm.MPI) == RegionRole.SYNCHRONIZATION

    def test_mpi_communication(self):
        for name in ("MPI_Send", "MPI_Reduce", "MPI_Alltoall"):
            assert default_role(name, Paradigm.MPI) == RegionRole.COMMUNICATION

    def test_openmp_barrier(self):
        assert (
            default_role("omp barrier", Paradigm.OPENMP)
            == RegionRole.SYNCHRONIZATION
        )
        assert default_role("omp parallel", Paradigm.OPENMP) == RegionRole.COMPUTE

    def test_io_and_user(self):
        assert default_role("fwrite", Paradigm.IO) == RegionRole.FILE_IO
        assert default_role("solve", Paradigm.USER) == RegionRole.COMPUTE


class TestRegionRegistry:
    def test_register_assigns_dense_ids(self):
        reg = RegionRegistry()
        assert reg.register("a") == 0
        assert reg.register("b") == 1
        assert len(reg) == 2
        assert reg[1].name == "b"

    def test_register_idempotent_by_name(self):
        reg = RegionRegistry()
        first = reg.register("a", paradigm=Paradigm.MPI)
        second = reg.register("a", paradigm=Paradigm.USER)
        assert first == second
        assert reg[first].paradigm == Paradigm.MPI  # first writer wins

    def test_id_of_and_get(self):
        reg = RegionRegistry()
        reg.register("main")
        assert reg.id_of("main") == 0
        assert reg.get("main").name == "main"
        assert reg.get("missing") is None
        with pytest.raises(KeyError):
            reg.id_of("missing")

    def test_contains_and_names(self):
        reg = RegionRegistry()
        reg.register("x")
        assert "x" in reg and "y" not in reg
        assert reg.names() == ["x"]

    def test_add_requires_sequential_ids(self):
        reg = RegionRegistry()
        with pytest.raises(ValueError, match="out of order"):
            reg.add(Region(id=5, name="z"))

    def test_add_rejects_duplicate_names(self):
        reg = RegionRegistry()
        reg.add(Region(id=0, name="z"))
        with pytest.raises(ValueError, match="duplicate"):
            reg.add(Region(id=1, name="z"))

    def test_iteration_order(self):
        reg = RegionRegistry()
        for name in "abc":
            reg.register(name)
        assert [r.name for r in reg] == ["a", "b", "c"]


class TestMetricRegistry:
    def test_register_and_lookup(self):
        reg = MetricRegistry()
        mid = reg.register("PAPI_TOT_CYC", unit="cycles", mode=MetricMode.ACCUMULATED)
        assert reg[mid].unit == "cycles"
        assert reg.id_of("PAPI_TOT_CYC") == mid
        assert reg.register("PAPI_TOT_CYC") == mid

    def test_add_out_of_order(self):
        reg = MetricRegistry()
        with pytest.raises(ValueError, match="out of order"):
            reg.add(Metric(id=3, name="m"))

    def test_add_duplicate_name(self):
        reg = MetricRegistry()
        reg.add(Metric(id=0, name="m"))
        with pytest.raises(ValueError, match="duplicate"):
            reg.add(Metric(id=1, name="m"))

    def test_metric_default_mode(self):
        m = Metric(id=0, name="m")
        assert m.mode == MetricMode.ABSOLUTE


class TestLocation:
    def test_fields(self):
        loc = Location(id=3, name="Rank 3", group="MPI")
        assert loc.id == 3 and loc.group == "MPI"
