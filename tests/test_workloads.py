"""Tests for workload generators (beyond the case-study assertions)."""

import numpy as np
import pytest

from repro.core import analyze_trace
from repro.sim.workloads.base import CloudField, per_rank_cost
from repro.sim.workloads.cosmo_specs import CosmoSpecsConfig
from repro.sim.workloads.synthetic import SyntheticConfig, generate, generate_result
from repro.trace import validate_trace


class TestCloudField:
    def test_weights_shape_and_floor(self):
        cloud = CloudField(nx=10, ny=8, center=(5, 4), sigma=2.0)
        w = cloud.weights(10)
        assert w.shape == (8, 10)
        assert np.all(w >= 1.0)

    def test_peak_at_center(self):
        cloud = CloudField(nx=11, ny=11, center=(5.5, 5.5), sigma=1.0,
                           growth_steps=1)
        w = cloud.weights(1)
        iy, ix = np.unravel_index(np.argmax(w), w.shape)
        assert (ix, iy) == (5, 5)

    def test_amplitude_ramp(self):
        cloud = CloudField(nx=4, ny=4, center=(2, 2), sigma=1.0,
                           max_amplitude=10.0, growth_steps=10)
        assert cloud.amplitude(0) == 0.0
        assert cloud.amplitude(5) == 5.0
        assert cloud.amplitude(10) == 10.0
        assert cloud.amplitude(99) == 10.0

    def test_growth_exponent(self):
        linear = CloudField(nx=4, ny=4, center=(2, 2), sigma=1.0,
                            max_amplitude=8.0, growth_steps=10)
        quadratic = CloudField(nx=4, ny=4, center=(2, 2), sigma=1.0,
                               max_amplitude=8.0, growth_steps=10,
                               growth_exponent=2.0)
        assert quadratic.amplitude(5) < linear.amplitude(5)
        assert quadratic.amplitude(10) == linear.amplitude(10)

    def test_drift_moves_peak(self):
        cloud = CloudField(nx=20, ny=20, center=(5, 10), sigma=1.0,
                           growth_steps=1, drift=(1.0, 0.0))
        w0 = cloud.weights(1)
        w5 = cloud.weights(5)
        x0 = np.unravel_index(np.argmax(w0), w0.shape)[1]
        x5 = np.unravel_index(np.argmax(w5), w5.shape)[1]
        assert x5 > x0

    def test_anisotropic_sigma(self):
        cloud = CloudField(nx=21, ny=21, center=(10.5, 10.5),
                           sigma=(1.0, 4.0), growth_steps=1)
        w = cloud.weights(1)
        # Wider in y than in x: farther cells in y keep more weight.
        assert w[16, 10] > w[10, 16]

    def test_per_rank_cost(self):
        weights = np.ones(8)
        assignment = np.asarray([0, 0, 1, 1, 2, 2, 3, 3])
        cost = per_rank_cost(weights, assignment, 4)
        assert list(cost) == [2.0, 2.0, 2.0, 2.0]

    def test_per_rank_cost_length_check(self):
        with pytest.raises(ValueError):
            per_rank_cost(np.ones(4), np.zeros(5, dtype=int), 2)


class TestCosmoSpecsConfig:
    def test_defaults_match_paper_scale(self):
        config = CosmoSpecsConfig()
        assert config.processes == 100
        assert config.iterations == 60

    def test_grid_dimensions(self):
        config = CosmoSpecsConfig(px=4, py=5, cells_per_rank=3)
        assert config.nx == 12 and config.ny == 15

    def test_non_square_process_count_rejected(self):
        from repro.sim.workloads import cosmo_specs

        with pytest.raises(ValueError, match="perfect square"):
            cosmo_specs.generate(processes=50)

    def test_small_run_is_valid_and_detectable(self):
        from repro.sim.workloads import cosmo_specs

        config = CosmoSpecsConfig(px=4, py=4, iterations=15)
        result = cosmo_specs.generate_result(config)
        assert validate_trace(result.trace).ok
        analysis = analyze_trace(result.trace)
        assert analysis.dominant_name == "timeloop_iteration"


class TestFD4Workload:
    def test_interrupt_rank_validated(self):
        from repro.sim.workloads import cosmo_specs_fd4

        with pytest.raises(ValueError, match="interrupt_rank"):
            cosmo_specs_fd4.generate(
                processes=10, iterations=2, interrupt_rank=99,
                blocks_x=8, blocks_y=8,
            )

    def test_small_run(self):
        from repro.sim.workloads import cosmo_specs_fd4

        trace = cosmo_specs_fd4.generate(
            processes=8,
            iterations=6,
            blocks_x=8,
            blocks_y=8,
            interrupt_rank=3,
            interrupt_step=2,
            interrupt_substep=1,
            interrupt_seconds=0.1,
        )
        assert validate_trace(trace).ok
        analysis = analyze_trace(trace)
        hot = analysis.imbalance.hottest_segment()
        assert hot.rank == 3 and hot.segment_index == 2


class TestWRFWorkload:
    def test_slow_rank_validated(self):
        from repro.sim.workloads import wrf

        with pytest.raises(ValueError, match="slow_rank"):
            wrf.generate(processes=4, iterations=2, slow_rank=64)

    def test_non_square_rejected(self):
        from repro.sim.workloads import wrf

        with pytest.raises(ValueError, match="perfect square"):
            wrf.generate(processes=12)

    def test_small_run_flags_slow_rank(self):
        from repro.sim.workloads import wrf

        trace = wrf.generate(processes=16, iterations=8, slow_rank=5,
                             init_seconds=0.5)
        analysis = analyze_trace(trace)
        assert analysis.hot_ranks() == [5]


class TestSyntheticWorkload:
    def test_ground_truth(self):
        config = SyntheticConfig(
            slow_ranks={3: 2.0}, outliers={(1, 4): 0.1}, trend_per_step=0.01
        )
        gt = config.ground_truth()
        assert gt.slow_ranks == (3,)
        assert gt.outlier_segments == ((1, 4),)
        assert gt.has_trend

    def test_compute_seconds(self):
        config = SyntheticConfig(
            base_compute=1.0, slow_ranks={2: 3.0}, trend_per_step=0.1
        )
        assert config.compute_seconds(0, 0) == 1.0
        assert config.compute_seconds(2, 0) == 3.0
        assert config.compute_seconds(0, 1) == pytest.approx(1.1)

    def test_collective_variants(self):
        for collective in ("allreduce", "barrier", "none"):
            trace = generate(
                SyntheticConfig(ranks=3, iterations=3, collective=collective)
            )
            assert validate_trace(trace).ok

    def test_bad_collective(self):
        with pytest.raises(ValueError, match="unknown collective"):
            generate(SyntheticConfig(collective="gossip"))

    def test_no_halo_single_rank(self):
        trace = generate(SyntheticConfig(ranks=1, iterations=3, use_halo=False,
                                         collective="none"))
        assert validate_trace(trace).ok

    def test_subiters(self):
        trace = generate(SyntheticConfig(ranks=2, iterations=4, subiters=3))
        from repro.profiles import profile_trace

        stats = profile_trace(trace).stats
        assert stats.of("work").count == 2 * 4 * 3

    def test_generate_kwargs_form(self):
        trace = generate(ranks=2, iterations=2)
        assert trace.num_processes == 2

    def test_generate_rejects_both_forms(self):
        with pytest.raises(TypeError):
            generate(SyntheticConfig(), ranks=2)

    def test_jitter(self):
        result = generate_result(
            SyntheticConfig(ranks=2, iterations=3, jitter_sigma=0.05, seed=1)
        )
        durations = analyze_trace(result.trace).sos.duration_matrix()
        assert np.std(durations) > 0
