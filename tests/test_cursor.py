"""Event cursors: chunked pull-based access to every trace source.

The cursor contract (``repro.trace.cursor``) is what lets one
incremental kernel serve the batch pipeline, the sharded workers and
the live monitor.  These tests pin the contract per implementation:
batches reassemble to the exact stream, every rank is announced final
exactly once, column projection holds, and the live protocol survives
fragmentation (partial lines, multiple events records per rank).
"""

import io

import numpy as np
import pytest

from repro.trace import write_binary, write_jsonl
from repro.trace.cursor import (
    FeedCursor,
    IndexCursor,
    JsonlStreamCursor,
    TailCursor,
)
from repro.trace.reader import TraceFormatError, TraceIndex


@pytest.fixture(scope="module")
def trace():
    from repro.sim.workloads.synthetic import SyntheticConfig, generate

    return generate(
        SyntheticConfig(ranks=4, iterations=5, base_compute=0.005, seed=11)
    )


@pytest.fixture(scope="module", params=["v1", "v2", "jsonl"])
def trace_file(request, trace, tmp_path_factory):
    root = tmp_path_factory.mktemp("cursors")
    if request.param == "v1":
        path = root / "run-v1.rpt"
        write_binary(trace, path, version=1)
    elif request.param == "v2":
        path = root / "run-v2.rpt"
        write_binary(trace, path, version=2, codec="raw")
    else:
        path = root / "run.jsonl"
        write_jsonl(trace, path)
    return request.param, path


def _reassemble(batches):
    """rank -> dict of concatenated column arrays, plus final counters."""
    chunks: dict[int, list] = {}
    finals: dict[int, int] = {}
    for batch in batches:
        assert finals.get(batch.rank, 0) == 0, "batch after final"
        chunks.setdefault(batch.rank, []).append(batch.events)
        if batch.final:
            finals[batch.rank] = finals.get(batch.rank, 0) + 1
    joined = {}
    for rank, parts in chunks.items():
        cols = parts[0].loaded_columns
        joined[rank] = {
            col: np.concatenate([getattr(p, col) for p in parts])
            for col in cols
        }
    return joined, finals


class TestIndexCursor:
    @pytest.mark.parametrize("chunk", [1, 7, 4096, None])
    def test_reassembles_to_whole_stream(self, trace, trace_file, chunk):
        fmt, path = trace_file
        index = TraceIndex(path)
        joined, finals = _reassemble(index.cursor(chunk_events=chunk))
        assert sorted(joined) == trace.ranks
        assert finals == {rank: 1 for rank in trace.ranks}
        for rank in trace.ranks:
            want = trace.events_of(rank)
            for col in ("time", "kind", "ref", "value"):
                np.testing.assert_array_equal(
                    joined[rank][col], getattr(want, col)
                )

    def test_column_projection(self, trace, trace_file):
        fmt, path = trace_file
        cursor = TraceIndex(path).cursor(
            columns=("time", "kind", "ref"), chunk_events=16
        )
        for batch in cursor:
            assert set(batch.events.loaded_columns) == {"time", "kind", "ref"}

    def test_rank_subset(self, trace, trace_file):
        fmt, path = trace_file
        ranks = trace.ranks[1:3]
        cursor = TraceIndex(path).cursor(ranks=ranks, chunk_events=32)
        assert cursor.ranks == ranks
        joined, finals = _reassemble(cursor)
        assert sorted(joined) == ranks

    def test_definitions_skeleton(self, trace, trace_file):
        fmt, path = trace_file
        defs = TraceIndex(path).cursor().definitions
        assert defs.ranks == trace.ranks
        assert [r.name for r in defs.regions] == [
            r.name for r in trace.regions
        ]
        assert all(len(defs.events_of(r)) == 0 for r in defs.ranks)

    def test_invalid_parameters(self, trace_file):
        fmt, path = trace_file
        index = TraceIndex(path)
        with pytest.raises(ValueError, match="chunk_events"):
            index.cursor(chunk_events=0)
        with pytest.raises(ValueError, match="duplicate"):
            IndexCursor(index, ranks=[0, 0])

    def test_zero_event_rank_announced_once(self):
        from repro.trace import Location, Trace
        from repro.trace.events import EventList, EventListBuilder

        t = Trace(name="hollow")
        t.regions.register("f")
        b = EventListBuilder()
        b.append(0.0, 0, ref=0)
        b.append(1.0, 1, ref=0)
        t.add_process(Location(0, "P0"), b.freeze())
        t.add_process(Location(1, "P1"), EventList.empty())
        import tempfile, os

        with tempfile.TemporaryDirectory() as root:
            path = os.path.join(root, "hollow.rpt")
            write_binary(t, path)
            batches = list(TraceIndex(path).cursor(chunk_events=1))
        empty = [b for b in batches if b.rank == 1]
        assert len(empty) == 1
        assert empty[0].final and len(empty[0].events) == 0


class TestSlicedReads:
    """v2 raw columns support exact byte-range loads."""

    def test_supports_slices_only_for_raw_v2(self, trace, tmp_path):
        v1 = tmp_path / "a.rpt"
        v2 = tmp_path / "b.rpt"
        zl = tmp_path / "c.rpt"
        write_binary(trace, v1, version=1)
        write_binary(trace, v2, version=2, codec="raw")
        write_binary(trace, zl, version=2, codec="zlib")
        rank = trace.ranks[0]
        assert TraceIndex(v2).supports_slices(rank, None)
        assert not TraceIndex(v1).supports_slices(rank, None)
        assert not TraceIndex(zl).supports_slices(rank, None)

    def test_load_events_range_matches_views(self, trace, tmp_path):
        path = tmp_path / "run.rpt"
        write_binary(trace, path, version=2, codec="raw")
        index = TraceIndex(path)
        for rank in trace.ranks:
            whole = trace.events_of(rank)
            n = len(whole)
            for start, stop in [(0, 5), (3, n - 2), (n - 1, n), (0, n)]:
                part = index.load_events(rank, start=start, stop=stop)
                for col in ("time", "kind", "ref", "value"):
                    np.testing.assert_array_equal(
                        getattr(part, col), getattr(whole, col)[start:stop]
                    )

    def test_strict_subrange_of_zlib_rejected(self, trace, tmp_path):
        path = tmp_path / "run.rpt"
        write_binary(trace, path, version=2, codec="zlib")
        index = TraceIndex(path)
        rank = trace.ranks[0]
        with pytest.raises(ValueError, match="slice"):
            index.load_events(rank, start=1, stop=3)


class TestJsonlStreamCursor:
    def test_pipe_equivalent_to_file(self, trace, tmp_path):
        path = tmp_path / "run.jsonl"
        write_jsonl(trace, path)
        cursor = JsonlStreamCursor(io.StringIO(path.read_text()))
        joined, finals = _reassemble(cursor)
        assert finals == {rank: 1 for rank in trace.ranks}
        for rank in trace.ranks:
            np.testing.assert_array_equal(
                joined[rank]["time"], trace.events_of(rank).time
            )
        assert cursor.definitions.ranks == trace.ranks

    def test_definitions_before_iteration_raises(self, trace, tmp_path):
        path = tmp_path / "run.jsonl"
        write_jsonl(trace, path)
        cursor = JsonlStreamCursor(io.StringIO(path.read_text()))
        with pytest.raises(RuntimeError, match="definitions"):
            cursor.definitions

    def test_drives_incremental_bootstrap(self, trace, tmp_path):
        from repro.core.fused import fused_bootstrap
        from repro.core.incremental import incremental_bootstrap

        path = tmp_path / "run.jsonl"
        write_jsonl(trace, path)
        got = incremental_bootstrap(
            JsonlStreamCursor(io.StringIO(path.read_text()))
        )
        want = fused_bootstrap(trace)
        assert sorted(got.tables) == sorted(want.tables)
        for rank in want.tables:
            np.testing.assert_array_equal(
                got.tables[rank].t_enter, want.tables[rank].t_enter
            )


class TestTailCursor:
    def _lines(self, trace, tmp_path):
        src = tmp_path / "full.jsonl"
        write_jsonl(trace, src)
        return src.read_text().splitlines(keepends=True)

    def test_growing_file_with_end_sentinel(self, trace, tmp_path):
        lines = self._lines(trace, tmp_path)
        live = tmp_path / "live.jsonl"
        live.write_text("")
        cursor = TailCursor(live, poll_interval=0.001)
        batches = []
        it = iter(cursor)
        with open(live, "a") as fp:
            for line in lines:
                # Fragmented append: flush mid-line to exercise the
                # partial-line buffer.
                half = len(line) // 2
                fp.write(line[:half])
                fp.flush()
                fp.write(line[half:])
                fp.flush()
            defs = cursor.wait_definitions(timeout=5.0)
            assert defs.ranks == trace.ranks
            fp.write('{"record": "end"}\n')
            fp.flush()
        batches.extend(it)
        joined, finals = _reassemble(batches)
        assert finals == {rank: 1 for rank in trace.ranks}
        for rank in trace.ranks:
            np.testing.assert_array_equal(
                joined[rank]["time"], trace.events_of(rank).time
            )

    def test_idle_timeout_ends_stream(self, trace, tmp_path):
        lines = self._lines(trace, tmp_path)
        live = tmp_path / "live.jsonl"
        live.write_text("".join(lines))  # complete file, no sentinel
        cursor = TailCursor(live, poll_interval=0.001, idle_timeout=0.05)
        joined, finals = _reassemble(cursor)
        assert finals == {rank: 1 for rank in trace.ranks}

    def test_rejects_non_jsonl(self, tmp_path):
        with pytest.raises(TraceFormatError, match="jsonl"):
            TailCursor(tmp_path / "run.rpt")

    def test_wait_definitions_timeout(self, tmp_path):
        live = tmp_path / "empty.jsonl"
        live.write_text("")
        cursor = TailCursor(live, poll_interval=0.001)
        with pytest.raises(TimeoutError):
            cursor.wait_definitions(timeout=0.05)


class TestFeedCursor:
    def test_push_and_drain(self, trace):
        defs = _skeleton(trace)
        cursor = FeedCursor(defs)
        rank = trace.ranks[0]
        events = trace.events_of(rank)
        cursor.push(rank, events[:10])
        cursor.push(rank, events[10:], final=True)
        cursor.close()
        joined, finals = _reassemble(cursor)
        np.testing.assert_array_equal(joined[rank]["time"], events.time)
        assert finals == {r: 1 for r in trace.ranks}

    def test_drain_before_close_raises(self, trace):
        cursor = FeedCursor(_skeleton(trace))
        cursor.push(trace.ranks[0], trace.events_of(trace.ranks[0])[:4])
        it = iter(cursor)
        next(it)
        with pytest.raises(RuntimeError, match="close"):
            next(it)

    def test_misuse_rejected(self, trace):
        cursor = FeedCursor(_skeleton(trace))
        rank = trace.ranks[0]
        events = trace.events_of(rank)[:2]
        with pytest.raises(ValueError, match="not defined"):
            cursor.push(999, events)
        cursor.push(rank, events, final=True)
        with pytest.raises(ValueError, match="finished"):
            cursor.push(rank, events)
        cursor.close()
        with pytest.raises(RuntimeError, match="closed"):
            cursor.push(trace.ranks[1], events)

    def test_drives_incremental_bootstrap(self, trace):
        from repro.core.fused import fused_bootstrap
        from repro.core.incremental import IncrementalKernel

        cursor = FeedCursor(_skeleton(trace))
        for rank in trace.ranks:
            events = trace.events_of(rank)
            for i in range(0, len(events), 17):
                cursor.push(rank, events[i : i + 17])
        cursor.close()
        kernel = IncrementalKernel(
            trace.regions,
            trace.metrics,
            trace.num_processes,
            trace.ranks,
            trace_name=trace.name,
        )
        for batch in cursor:
            kernel.feed(batch.rank, batch.events)
            if batch.final:
                kernel.finish_rank(batch.rank)
        got = kernel.finalize()
        want = fused_bootstrap(trace)
        for rank in want.tables:
            np.testing.assert_array_equal(
                got.tables[rank].t_leave, want.tables[rank].t_leave
            )


def _skeleton(trace):
    """Definitions-only copy of ``trace`` (what a live header carries)."""
    from repro.trace import Trace
    from repro.trace.events import EventList

    skeleton = Trace(
        regions=trace.regions, metrics=trace.metrics, name=trace.name
    )
    for rank in trace.ranks:
        skeleton.add_process(trace.process(rank).location, EventList.empty())
    return skeleton


def _skeleton_donor():
    """Any tiny trace; only its header line is used."""
    from repro.sim.workloads.synthetic import SyntheticConfig, generate

    return generate(SyntheticConfig(ranks=2, iterations=2, seed=1))


class TestLiveStreamEdgeCases:
    """The monitor's failure modes: idle writers and torn records.

    ``repro monitor --follow`` rides on these cursors; a writer that
    dies mid-record (pipe) or simply stops (idle tail) must end the
    stream deterministically, never hang and never parse torn data.
    """

    def test_tail_idle_expiry_ignores_trailing_partial_line(
        self, trace, tmp_path
    ):
        # A writer killed mid-record leaves an unterminated last line;
        # the idle timeout must end the stream with only the complete
        # records parsed (the torn bytes stay in the buffer forever).
        full = tmp_path / "full.jsonl"
        write_jsonl(trace, full)
        lines = full.read_text().splitlines(keepends=True)
        live = tmp_path / "live.jsonl"
        extra = lines[-1]
        live.write_text("".join(lines) + extra[: len(extra) // 2])
        cursor = TailCursor(live, poll_interval=0.001, idle_timeout=0.05)
        joined, finals = _reassemble(cursor)
        assert finals == {rank: 1 for rank in trace.ranks}
        for rank in trace.ranks:
            np.testing.assert_array_equal(
                joined[rank]["time"], trace.events_of(rank).time
            )

    def test_tail_wait_definitions_idle_expiry_freezes_skeleton(
        self, tmp_path
    ):
        # Only a header, then silence: with an idle timeout the wait
        # must end with a frozen (empty) skeleton instead of raising.
        full = tmp_path / "full.jsonl"
        write_jsonl(_skeleton_donor(), full)
        header = full.read_text().splitlines(keepends=True)[0]
        live = tmp_path / "header-only.jsonl"
        live.write_text(header)
        cursor = TailCursor(live, poll_interval=0.001, idle_timeout=0.05)
        defs = cursor.wait_definitions(timeout=5.0)
        assert defs.ranks == []

    def test_tail_idle_expiry_mid_stream_closes_all_ranks(
        self, trace, tmp_path
    ):
        # Writer stops after the first rank's events: the idle expiry
        # must still announce every *defined* rank as final so the
        # consumer can finalize.
        full = tmp_path / "full.jsonl"
        write_jsonl(trace, full)
        lines = full.read_text().splitlines(keepends=True)
        first_events = next(
            i for i, ln in enumerate(lines) if '"events"' in ln
        )
        live = tmp_path / "live.jsonl"
        live.write_text("".join(lines[: first_events + 1]))
        cursor = TailCursor(live, poll_interval=0.001, idle_timeout=0.05)
        finals = {}
        seen_events = {}
        for batch in cursor:
            seen_events[batch.rank] = (
                seen_events.get(batch.rank, 0) + len(batch.events)
            )
            if batch.final:
                finals[batch.rank] = finals.get(batch.rank, 0) + 1
        assert finals == {rank: 1 for rank in trace.ranks}
        assert sum(1 for n in seen_events.values() if n > 0) == 1

    def test_stream_mid_record_eof_on_pipe_raises(self, trace, tmp_path):
        # A pipe writer dying mid-record delivers a truncated final
        # line (no terminator): readline returns it, and the parser
        # must fail loudly instead of yielding a half-batch.
        import os

        full = tmp_path / "full.jsonl"
        write_jsonl(trace, full)
        text = full.read_text()
        truncated = text[: text.rindex('"record"')]

        read_fd, write_fd = os.pipe()
        with open(write_fd, "w") as wf:
            wf.write(truncated)
        with open(read_fd, "r") as rf:
            cursor = JsonlStreamCursor(rf)
            with pytest.raises(TraceFormatError, match="corrupt record"):
                for _ in cursor:
                    pass

    def test_stream_eof_without_sentinel_closes_all_ranks(
        self, trace, tmp_path
    ):
        # Clean EOF (writer exited after its last full record, no end
        # sentinel): every rank still gets its final batch.
        full = tmp_path / "full.jsonl"
        write_jsonl(trace, full)
        cursor = JsonlStreamCursor(io.StringIO(full.read_text()))
        joined, finals = _reassemble(cursor)
        assert finals == {rank: 1 for rank in trace.ranks}
        for rank in trace.ranks:
            np.testing.assert_array_equal(
                joined[rank]["time"], trace.events_of(rank).time
            )
