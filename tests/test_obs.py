"""Tests for repro.obs: primitives, export, summary, logging, CLI.

The headline contract is circular: telemetry collected while analysing
a trace must itself export as a valid ``.rpt`` v2 trace that survives
``lint`` with zero errors and that ``analyze`` can segment — the
analyzer eats its own dogfood.
"""

from __future__ import annotations

import json
import logging
import re
import threading

import pytest
from hypothesis import given, settings, strategies as st

import repro.obs as obs
from repro.cli import main
from repro.obs.core import ENTER, LEAVE, SAMPLE
from repro.obs.export import SELF_TRACE_ATTR, self_trace, summarize, write_self_trace


@pytest.fixture(autouse=True)
def _obs_clean():
    """Every test starts and ends with telemetry off."""
    obs.disable()
    yield
    obs.disable()


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs") / "syn.rpt"
    assert main([
        "simulate", "synthetic", "--processes", "6", "--iterations", "30",
        "--seed", "5", "-o", str(path),
    ]) == 0
    return path


# ---------------------------------------------------------------------------
# Core primitives
# ---------------------------------------------------------------------------


class TestPrimitives:
    def test_disabled_span_is_shared_noop(self):
        assert not obs.enabled()
        s1 = obs.span("a")
        s2 = obs.span("b")
        assert s1 is s2  # no allocation on the disabled fast path
        with s1:
            pass  # no-op context manager

    def test_disabled_counter_records_nothing(self):
        obs.counter("x").add(5)
        obs.gauge("y").set(2)
        col = obs.enable()
        assert col.counters() == {}
        assert col.gauges() == {}

    def test_span_records_balanced_pair(self):
        col = obs.enable()
        with obs.span("work"):
            pass
        [jrn] = col.journals
        tags = [e[0] for e in jrn.entries]
        assert tags == [ENTER, LEAVE]
        assert jrn.entries[0][2] == jrn.entries[1][2] == "work"
        assert jrn.entries[0][1] <= jrn.entries[1][1]
        assert jrn.stack == []

    def test_nested_spans_and_iter_spans(self):
        col = obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        spans = list(col.iter_spans())
        assert [(s.name, s.depth) for s in spans] == [("inner", 1), ("outer", 0)]
        assert all(s.duration >= 0 for s in spans)

    def test_disable_mid_span_stays_balanced(self):
        col = obs.enable()
        span = obs.span("late")
        with span:
            obs.disable()
        [jrn] = col.journals
        assert [e[0] for e in jrn.entries] == [ENTER, LEAVE]

    def test_traced_decorator_obeys_flag_per_call(self):
        @obs.traced()
        def work() -> int:
            return 7

        assert work() == 7  # disabled: plain call
        col = obs.enable()
        assert work() == 7
        names = [s.name for s in col.iter_spans()]
        assert names == [work.__wrapped__.__qualname__]

    def test_counters_and_gauges_accumulate(self):
        col = obs.enable()
        c = obs.counter("cache.hit")
        c.add()
        c.add(2)
        obs.gauge("depth").set(3)
        obs.gauge("depth").set(1)
        assert col.counters() == {"cache.hit": 3.0}
        assert col.gauges() == {"depth": 1.0}
        # Samples journal the running total / last value.
        samples = [e for e in col.journals[0].entries if e[0] == SAMPLE]
        assert [s[3] for s in samples] == [1.0, 3.0, 3.0, 1.0]

    def test_counter_handles_are_shared(self):
        assert obs.counter("same") is obs.counter("same")
        assert obs.gauge("same") is obs.gauge("same")

    def test_threads_get_separate_journals(self):
        col = obs.enable()

        def worker():
            with obs.span("t"):
                pass

        t = threading.Thread(target=worker, name="obs-worker")
        with obs.span("main-span"):
            t.start()
            t.join()
        assert len(col.journals) == 2
        names = {j.thread_name for j in col.journals}
        assert "obs-worker" in names


class TestSnapshotMerge:
    def test_snapshot_is_picklable_and_merges(self):
        import pickle

        col = obs.enable(obs.Collector(origin="shard-0"))
        with obs.span("shard.phase1"):
            obs.counter("analysis.events").add(10)
        snap = pickle.loads(pickle.dumps(obs.disable().snapshot()))

        parent = obs.enable()
        with obs.span("parent"):
            obs.counter("analysis.events").add(5)
        parent.merge(snap)
        assert parent.counters() == {"analysis.events": 15.0}
        origins = [o for o, _ in parent._all_journals()]
        assert origins == ["main", "shard-0"]  # local first, merge order after

    def test_nested_fork_snapshots_survive_the_hop(self):
        """A worker that merged its own sub-workers loses nothing.

        Shard worker -> hb global phase -> sub-worker: the grandchild
        snapshot rides in the worker snapshot's ``children`` and its
        journals and counters must surface in the parent's totals.
        """
        import pickle

        grand = obs.enable(obs.Collector(origin="shard-0-sub"))
        with obs.span("lint.shard"):
            obs.counter("analysis.events").add(7)
        grand_snap = pickle.loads(pickle.dumps(obs.disable().snapshot()))

        worker = obs.enable(obs.Collector(origin="shard-0"))
        with obs.span("shard.phase1"):
            obs.counter("analysis.events").add(10)
        worker.merge(grand_snap)
        worker_snap = pickle.loads(pickle.dumps(obs.disable().snapshot()))
        assert worker_snap["children"], "merged snaps must ship as children"

        parent = obs.enable()
        obs.counter("analysis.events").add(5)
        parent.merge(worker_snap)
        assert parent.counters() == {"analysis.events": 22.0}
        origins = [o for o, _ in parent._all_journals()]
        assert origins == ["main", "shard-0", "shard-0-sub"]
        spans = {s.name for s in parent.iter_spans()}
        assert {"shard.phase1", "lint.shard"} <= spans

    def test_counters_monotone_across_repeated_snapshots(self):
        """snapshot() is a read: totals never decrease or double-count."""
        col = obs.enable()
        c = obs.counter("analysis.events")
        seen = []
        for i in range(5):
            c.add(3)
            snap = col.snapshot()
            seen.append(snap["counters"]["analysis.events"])
            assert col.counters()["analysis.events"] == seen[-1]
        assert seen == [3.0, 6.0, 9.0, 12.0, 15.0]
        assert seen == sorted(seen)

    def test_worker_inherits_trace_context(self):
        parent = obs.enable()
        with obs.span("stage.sos"):
            ctx = obs.current_context()
        assert ctx["trace_id"] == parent.trace_id
        assert ctx["epoch"] == parent.epoch
        assert ctx["parent_span"] == "stage.sos"
        worker = obs.Collector(
            origin="shard-0",
            trace_id=ctx["trace_id"],
            epoch=ctx["epoch"],
            parent_span=ctx["parent_span"],
        )
        assert worker.trace_id == parent.trace_id
        assert worker.epoch == parent.epoch
        snap = worker.snapshot()
        assert snap["trace_id"] == parent.trace_id
        assert snap["epoch"] == parent.epoch

    def test_current_context_none_when_disabled(self):
        assert obs.current_context() is None
        obs.enable()
        ctx = obs.current_context()
        assert ctx is not None and set(ctx) == {
            "trace_id", "epoch", "parent_span",
        }


class TestSeriesRing:
    def test_counter_buckets_accumulate_increments(self):
        ring = obs.SeriesRing("counter", resolution=1.0, capacity=8)
        ring.update(0.1, 2.0)
        ring.update(0.7, 3.0)
        ring.update(1.2, 4.0)
        assert ring.items() == [(0.0, 5.0), (1.0, 4.0)]

    def test_gauge_buckets_keep_last_value(self):
        ring = obs.SeriesRing("gauge", resolution=1.0, capacity=8)
        ring.update(0.1, 2.0)
        ring.update(0.7, 3.0)
        ring.update(2.5, 1.0)
        assert ring.items() == [(0.0, 3.0), (2.0, 1.0)]

    def test_eviction_keeps_newest_buckets(self):
        ring = obs.SeriesRing("counter", resolution=1.0, capacity=3)
        for t in range(10):
            ring.update(float(t), 1.0)
        assert ring.items() == [(7.0, 1.0), (8.0, 1.0), (9.0, 1.0)]

    def test_out_of_order_updates_fold_or_drop(self):
        ring = obs.SeriesRing("counter", resolution=1.0, capacity=4)
        for t in (0.0, 5.0, 7.0):
            ring.update(t, 1.0)
        ring.update(5.5, 2.0)   # folds into retained bucket 5
        ring.update(6.0, 3.0)   # inserts between retained buckets
        ring.update(-9.0, 9.0)  # before the ring: dropped
        assert ring.items() == [
            (0.0, 1.0), (5.0, 3.0), (6.0, 3.0), (7.0, 1.0),
        ]

    def test_collector_series_merges_foreign_snapshots(self):
        parent = obs.enable(
            obs.Collector(series_resolution=0.5, series_capacity=64)
        )
        obs.counter("analysis.events").add(4)
        worker = obs.Collector(
            epoch=parent.epoch, series_resolution=0.5, series_capacity=64
        )
        worker.counter_add("analysis.events", 6)
        parent.merge(worker.snapshot())
        total = sum(v for _, v in parent.series("analysis.events"))
        assert total == 10.0
        assert "analysis.events" in parent.series_names()
        assert parent.series("never.recorded") == []

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=500.0),
                st.floats(min_value=-10.0, max_value=10.0),
            ),
            max_size=200,
        ),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_ring_memory_bound_and_totals(self, samples, capacity):
        """Eviction bound: never more than ``capacity`` buckets, and the
        retained buckets hold exactly the sum of their samples."""
        ring = obs.SeriesRing("counter", resolution=1.0, capacity=capacity)
        for t, v in samples:
            ring.update(t, v)
        items = ring.items()
        assert len(items) <= capacity
        times = [t for t, _ in items]
        assert times == sorted(times)
        if items:
            lo = items[0][0]
            expect: dict[float, float] = {}
            for t, v in samples:
                bucket = float(int(t / 1.0) * 1.0)
                if bucket >= lo:
                    expect[bucket] = expect.get(bucket, 0.0) + v
            got = dict(items)
            # Buckets older than the retention window may have been
            # evicted before late same-bucket samples arrived; every
            # retained bucket must still be a sum of its samples.
            for bucket, value in got.items():
                assert value == pytest.approx(expect.get(bucket, value))


class TestMetricsExposition:
    def _collect(self):
        col = obs.enable()
        obs.counter("cache.hit").add(3)
        obs.counter("io.bytes_read").add(1024)
        obs.gauge("shard.queue_depth").set(2)
        return col

    def test_render_prometheus_format(self):
        col = self._collect()
        text = obs.render_prometheus(col)
        assert "# TYPE repro_cache_hit_total counter" in text
        assert "repro_cache_hit_total 3" in text
        assert "# TYPE repro_shard_queue_depth gauge" in text
        assert "repro_shard_queue_depth 2" in text
        assert f'trace_id="{col.trace_id}"' in text
        assert text.endswith("\n")

    def test_write_metrics_file_atomic(self, tmp_path):
        col = self._collect()
        path = tmp_path / "metrics.prom"
        obs.write_metrics_file(col, path)
        assert path.read_text() == obs.render_prometheus(col)
        # No temp droppings left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["metrics.prom"]

    def test_counter_rate_reflects_ring_series(self):
        col = obs.enable(obs.Collector(series_resolution=100.0))
        obs.counter("analysis.events").add(50)
        text = obs.render_prometheus(col)
        assert "repro_analysis_events_rate 0.5" in text  # 50 per 100 s


# ---------------------------------------------------------------------------
# Export + summary
# ---------------------------------------------------------------------------


class TestExport:
    def _collect(self):
        col = obs.enable()
        with obs.span("phase.a"):
            obs.counter("analysis.events").add(4)
            with obs.span("phase.b"):
                pass
        with obs.span("phase.b"):
            pass
        obs.gauge("shard.queue_depth").set(2)
        return obs.disable()

    def test_self_trace_maps_spans_and_counters(self):
        trace = self_trace(self._collect())
        assert trace.attributes[SELF_TRACE_ATTR] == "1"
        assert trace.attributes["counter.analysis.events"] == "4.0"
        assert trace.attributes["gauge.shard.queue_depth"] == "2.0"
        assert sorted(r.name for r in trace.regions) == ["phase.a", "phase.b"]
        assert [m.name for m in trace.metrics] == ["analysis.events",
                                                   "shard.queue_depth"]
        events = trace.events_of(trace.ranks[0])
        # 3 spans -> 6 enter/leave events + 2 metric samples.
        assert len(events) == 8
        # Epoch-normalised: t=0 is the collector's enable time, so the
        # first entry lands shortly *after* zero, never before.
        assert 0.0 <= float(events.time[0]) < 1.0

    def test_self_trace_passes_lint_with_zero_errors(self):
        from repro.lint import lint_trace

        report = lint_trace(self_trace(self._collect()))
        assert not [d for d in report.diagnostics
                    if d.severity.name.lower() == "error"]

    def test_export_is_deterministic(self, tmp_path):
        col = self._collect()
        a, b = tmp_path / "a.rpt", tmp_path / "b.rpt"
        write_self_trace(col, a)
        write_self_trace(col, b)
        assert a.read_bytes() == b.read_bytes()

    def test_open_spans_are_closed_at_snapshot_time(self):
        col = obs.enable()
        span = obs.span("unfinished")
        span.__enter__()
        trace = self_trace(obs.disable())
        events = trace.events_of(trace.ranks[0])
        assert len(events) == 2  # synthetic LEAVE appended

    def test_summarize_matches_live_and_file(self, tmp_path):
        col = self._collect()
        path = tmp_path / "s.rpt"
        write_self_trace(col, path)
        from repro.trace import read_trace

        live = summarize(col)
        from_file = summarize(read_trace(str(path)))
        assert [p.name for p in live.phases] == [p.name for p in from_file.phases]
        assert live.counters == from_file.counters
        assert live.wall_s == pytest.approx(from_file.wall_s)

    def test_summary_ratios(self):
        col = obs.enable()
        with obs.span("p"):
            obs.counter("cache.hit").add(3)
            obs.counter("cache.miss").add(1)
        summary = summarize(obs.disable())
        assert summary.cache_hit_ratio == pytest.approx(0.75)
        text = summary.format()
        assert "75.0% hit ratio" in text
        assert "p" in text


# ---------------------------------------------------------------------------
# Instrumented pipeline -> circular analysis
# ---------------------------------------------------------------------------


class TestDogfood:
    def test_session_records_phases(self, trace_path):
        from repro.core.session import AnalysisSession

        col = obs.enable()
        AnalysisSession(None, source_path=str(trace_path)).analysis()
        col = obs.disable()
        names = {s.name for s in col.iter_spans()}
        assert {"session.analysis", "fused.bootstrap", "fused.rank",
                "io.load", "stage.sos"} <= names
        counters = col.counters()
        assert counters["analysis.events"] > 0
        assert counters["io.events_loaded"] > 0

    def test_sharded_workers_ship_snapshots(self, trace_path, monkeypatch):
        from repro.core.session import AnalysisSession

        monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
        col = obs.enable()
        AnalysisSession(None, source_path=str(trace_path), shards=2).analysis()
        col = obs.disable()
        origins = {o for o, _ in col._all_journals()}
        assert {"main", "shard-0", "shard-1"} <= origins
        trace = self_trace(col)
        assert trace.num_processes >= 3  # main + worker ranks
        # Worker counters folded into the totals.
        assert col.counters()["analysis.events"] > 0

    def test_cache_counters(self, trace_path, tmp_path):
        from repro.core.session import AnalysisSession

        cache_dir = tmp_path / "cache"
        col = obs.enable()
        AnalysisSession(
            None, source_path=str(trace_path), cache_dir=cache_dir
        ).analysis()
        cold = dict(col.counters())
        AnalysisSession(
            None, source_path=str(trace_path), cache_dir=cache_dir
        ).analysis()
        warm = obs.disable().counters()
        assert cold.get("cache.miss", 0) > 0
        assert warm["cache.hit"] > cold.get("cache.hit", 0)

    def test_lint_rule_timings(self, trace_path):
        from repro.lint import lint_path

        col = obs.enable()
        lint_path(str(trace_path))
        col = obs.disable()
        timed = [k for k in col.counters() if k.startswith("lint.rule.")]
        assert timed and all(k.endswith(".s") for k in timed)


# ---------------------------------------------------------------------------
# Sampling profiler
# ---------------------------------------------------------------------------


def _busy(deadline: float) -> float:
    import time

    acc = 0.0
    while time.perf_counter() < deadline:
        acc += sum(i * i for i in range(200))
    return acc


class TestProfiler:
    @pytest.mark.parametrize("backend", ["signal", "thread"])
    def test_backends_capture_samples(self, backend):
        import time

        from repro.obs.profiler import Profiler

        prof = Profiler(interval=0.001, backend=backend)
        prof.start()
        _busy(time.perf_counter() + 0.08)
        prof.stop()
        assert prof.samples, f"{backend} backend captured nothing"
        assert prof.duration > 0
        # Every stack is root-first and non-empty.
        for _, stack in prof.samples:
            assert stack and all(isinstance(f, str) for f in stack)
        assert any("_busy" in f for _, stack in prof.samples for f in stack)

    def test_collapsed_and_speedscope_formats(self):
        import time

        from repro.obs.profiler import Profiler

        prof = Profiler(interval=0.001, backend="thread")
        with prof:
            _busy(time.perf_counter() + 0.05)
        collapsed = prof.collapsed()
        assert collapsed
        for line in collapsed.splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) >= 1

        doc = prof.speedscope("unit")
        assert doc["$schema"].endswith("file-format-schema.json")
        assert doc["profiles"][0]["type"] == "sampled"
        n = len(doc["profiles"][0]["samples"])
        assert n == len(prof.samples)
        assert len(doc["profiles"][0]["weights"]) == n
        frames = doc["shared"]["frames"]
        for sample in doc["profiles"][0]["samples"]:
            assert all(0 <= i < len(frames) for i in sample)

    def test_write_chooses_format_by_suffix(self, tmp_path):
        import time

        from repro.obs.profiler import Profiler

        prof = Profiler(interval=0.001, backend="thread")
        with prof:
            _busy(time.perf_counter() + 0.03)
        js = tmp_path / "p.speedscope.json"
        txt = tmp_path / "p.collapsed"
        prof.write(js)
        prof.write(txt)
        assert json.loads(js.read_text())["profiles"]
        assert txt.read_text() == prof.collapsed()

    def test_journal_is_balanced(self):
        import time

        from repro.obs.core import ENTER as J_ENTER
        from repro.obs.core import LEAVE as J_LEAVE
        from repro.obs.profiler import Profiler

        prof = Profiler(interval=0.001, backend="thread")
        with prof:
            _busy(time.perf_counter() + 0.05)
        jrn = prof.journal()
        depth = 0
        open_names: list[str] = []
        last_t = 0.0
        for entry in jrn["entries"]:
            kind, t, name = entry[0], entry[1], entry[2]
            assert t >= last_t
            last_t = t
            if kind == J_ENTER:
                depth += 1
                open_names.append(name)
            elif kind == J_LEAVE:
                depth -= 1
                assert open_names.pop() == name  # LIFO nesting
            assert depth >= 0
        assert depth == 0  # every ENTER closed

    def test_attach_profile_folds_into_self_trace(self):
        import time

        from repro.obs.profiler import Profiler

        col = obs.enable()
        prof = Profiler(interval=0.001, backend="thread", clock=col.clock)
        with obs.span("phase.a"):
            with prof:
                _busy(time.perf_counter() + 0.05)
        col = obs.disable()
        col.attach_profile(prof)
        assert col.counters()["profile.samples"] == float(len(prof.samples))
        trace = self_trace(col)
        # The profiler rank shows up alongside the main journal.
        assert trace.num_processes == 2
        names = {r.name for r in trace.regions}
        assert any("_busy" in n for n in names)

    def test_attach_profile_without_samples_is_noop(self):
        from repro.obs.profiler import Profiler

        col = obs.enable()
        obs.counter("x").add(1)
        col = obs.disable()
        col.attach_profile(Profiler(backend="thread"))
        assert "profile.samples" not in col.counters()


# ---------------------------------------------------------------------------
# Logging
# ---------------------------------------------------------------------------


class TestLogging:
    def test_verbosity_mapping(self):
        assert obs.verbosity_level() == logging.WARNING
        assert obs.verbosity_level(verbose=1) == logging.INFO
        assert obs.verbosity_level(verbose=2) == logging.DEBUG
        assert obs.verbosity_level(quiet=1) == logging.ERROR
        assert obs.verbosity_level(quiet=5) == logging.CRITICAL
        assert obs.verbosity_level(verbose=1, quiet=1) == logging.WARNING

    def test_configure_logging_json(self, capsys):
        import io

        stream = io.StringIO()
        logger = obs.configure_logging(
            level="INFO", fmt="json", stream=stream
        )
        obs.get_logger("core.shard").info("hello", extra={"shard": 3})
        payload = json.loads(stream.getvalue())
        assert payload["msg"] == "hello"
        assert payload["logger"] == "repro.core.shard"
        assert payload["shard"] == 3
        # Reconfiguration replaces the handler rather than stacking.
        obs.configure_logging(level="WARNING", fmt="text", stream=stream)
        assert len([h for h in logger.handlers
                    if getattr(h, "_repro_obs", False)]) == 1

    def test_env_level_fallback(self, monkeypatch):
        import io

        monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
        logger = obs.configure_logging(stream=io.StringIO())
        assert logger.level == logging.DEBUG

    def test_bad_level_raises(self):
        with pytest.raises(ValueError):
            obs.configure_logging(level="NOPE")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCLI:
    def test_analyze_self_trace_round_trip(self, trace_path, tmp_path, capsys):
        self_path = tmp_path / "self.rpt"
        assert main([
            "analyze", str(trace_path),
            "--self-trace", str(self_path), "--stats",
        ]) == 0
        out = capsys.readouterr()
        assert "phase" in out.out and "session.analysis" in out.out
        assert "wrote self-trace" in out.err
        assert self_path.exists()
        # Circular: the self-trace analyses and names an analyzer phase
        # (which phase wins is a timing race; any own-phase is truthful).
        assert main(["analyze", str(self_path)]) == 0
        report = capsys.readouterr().out
        assert re.search(r"selected: '(session|stage|fused|io|shard|lint)\.",
                         report)
        # ... and lints with zero errors.
        assert main(["lint", str(self_path)]) in (0, 1)
        lint_out = capsys.readouterr().out
        assert "0 errors" in lint_out

    def test_self_trace_bit_stable_without_mmap(
        self, trace_path, tmp_path, monkeypatch, capsys
    ):
        from repro.trace.fingerprint import fingerprint_trace
        from repro.trace.reader import TraceIndex

        self_path = tmp_path / "self.rpt"
        assert main([
            "analyze", str(trace_path), "--self-trace", str(self_path),
        ]) == 0
        capsys.readouterr()
        with_mmap = fingerprint_trace(TraceIndex(str(self_path)).load())
        monkeypatch.setenv("REPRO_NO_MMAP", "1")
        no_mmap = fingerprint_trace(TraceIndex(str(self_path)).load())
        assert with_mmap.hexdigest == no_mmap.hexdigest

    def test_stats_subcommand(self, trace_path, tmp_path, capsys):
        self_path = tmp_path / "self.rpt"
        assert main([
            "baselines", str(trace_path), "--self-trace", str(self_path),
        ]) == 0
        capsys.readouterr()
        assert main(["stats", str(self_path)]) == 0
        out = capsys.readouterr().out
        assert "wall time" in out and "fused.bootstrap" in out
        assert "not a self-trace" not in out

    def test_stats_on_plain_trace_notes_it(self, trace_path, capsys):
        assert main(["stats", str(trace_path)]) == 0
        assert "not a self-trace" in capsys.readouterr().out

    def test_stats_missing_file_exit_2(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.rpt")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_self_trace_unwritable_exit_2(self, trace_path, tmp_path, capsys):
        target = tmp_path / "no-such-dir" / "self.rpt"
        assert main([
            "analyze", str(trace_path), "--self-trace", str(target),
        ]) == 2
        assert "cannot write self-trace" in capsys.readouterr().err

    def test_verbose_flag_positions(self, trace_path, capsys):
        # Before and after the subcommand, plus --log-level override.
        assert main(["-v", "info", str(trace_path)]) == 0
        assert main(["info", str(trace_path), "-v"]) == 0
        assert main(["info", str(trace_path), "--log-level", "DEBUG"]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG
        assert main(["info", str(trace_path), "-q"]) == 0
        assert logging.getLogger("repro").level == logging.ERROR
        capsys.readouterr()

    def test_bad_log_level_exit_2(self, trace_path, capsys):
        assert main(["info", str(trace_path), "--log-level", "NOPE"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_heartbeat_logged_at_info(self, trace_path, capsys):
        import io

        stream = io.StringIO()
        obs.configure_logging(level="INFO", stream=stream)
        from repro.lint import lint_path

        lint_path(str(trace_path), shards=2, workers=1)
        obs.configure_logging(level="WARNING")  # restore default
        logged = stream.getvalue()
        assert "shard 1/2 done" in logged and "shard 2/2 done" in logged

    def test_obs_disabled_after_cli_run(self, trace_path, tmp_path, capsys):
        assert main([
            "analyze", str(trace_path),
            "--self-trace", str(tmp_path / "s.rpt"),
        ]) == 0
        capsys.readouterr()
        assert not obs.enabled()
        assert obs.collector() is None

    def test_metrics_file_flag_writes_prometheus(
        self, trace_path, tmp_path, capsys
    ):
        metrics = tmp_path / "metrics.prom"
        assert main([
            "analyze", str(trace_path), "--metrics-file", str(metrics),
        ]) == 0
        capsys.readouterr()
        text = metrics.read_text()
        assert "# TYPE repro_analysis_events_total counter" in text
        assert "repro_obs_info{" in text

    def test_profile_flag_writes_speedscope(self, trace_path, tmp_path, capsys):
        prof_path = tmp_path / "prof.speedscope.json"
        assert main([
            "analyze", str(trace_path), "--profile", str(prof_path),
        ]) == 0
        err = capsys.readouterr().err
        assert "wrote profile" in err
        doc = json.loads(prof_path.read_text())
        assert doc["profiles"][0]["type"] == "sampled"

    def test_profile_bad_interval_exit_2(self, trace_path, tmp_path, capsys):
        assert main([
            "analyze", str(trace_path),
            "--profile", str(tmp_path / "p.json"),
            "--profile-interval", "0",
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_sharded_self_trace_has_single_trace_id(
        self, trace_path, tmp_path, monkeypatch, capsys
    ):
        from repro.trace import read_trace

        monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
        self_path = tmp_path / "self.rpt"
        assert main([
            "analyze", str(trace_path), "--shards", "2",
            "--self-trace", str(self_path),
        ]) == 0
        capsys.readouterr()
        trace = read_trace(str(self_path))
        trace_id = trace.attributes["repro.trace_id"]
        assert re.fullmatch(r"[0-9a-f]{16}", trace_id)
        # Worker origins stitched in with their forking span recorded.
        ctx_keys = [k for k in trace.attributes if k.startswith("ctx.shard-")]
        assert ctx_keys
        for key in ctx_keys:
            assert trace.attributes[key]  # parent span name, non-empty
        # All origins share the epoch: every event time is >= 0 and the
        # journals interleave on one clock.
        for rank in trace.ranks:
            events = trace.events_of(rank)
            assert float(events.time[0]) >= 0.0

    def test_stats_graceful_on_counter_only_trace(self, tmp_path, capsys):
        obs.enable()
        obs.counter("cache.hit").add(2)
        col = obs.disable()
        path = tmp_path / "counters.rpt"
        write_self_trace(col, path)
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "counters only" in out
        assert "cache.hit" in out

    def test_live_stats_graceful_when_nothing_recorded(self, capsys):
        from repro.cli import _emit_telemetry

        class _Args:
            stats = True

        obs.enable()
        col = obs.disable()
        _emit_telemetry(_Args(), col)
        assert "no telemetry recorded" in capsys.readouterr().out
