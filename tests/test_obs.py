"""Tests for repro.obs: primitives, export, summary, logging, CLI.

The headline contract is circular: telemetry collected while analysing
a trace must itself export as a valid ``.rpt`` v2 trace that survives
``lint`` with zero errors and that ``analyze`` can segment — the
analyzer eats its own dogfood.
"""

from __future__ import annotations

import json
import logging
import re
import threading

import pytest

import repro.obs as obs
from repro.cli import main
from repro.obs.core import ENTER, LEAVE, SAMPLE
from repro.obs.export import SELF_TRACE_ATTR, self_trace, summarize, write_self_trace


@pytest.fixture(autouse=True)
def _obs_clean():
    """Every test starts and ends with telemetry off."""
    obs.disable()
    yield
    obs.disable()


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs") / "syn.rpt"
    assert main([
        "simulate", "synthetic", "--processes", "6", "--iterations", "30",
        "--seed", "5", "-o", str(path),
    ]) == 0
    return path


# ---------------------------------------------------------------------------
# Core primitives
# ---------------------------------------------------------------------------


class TestPrimitives:
    def test_disabled_span_is_shared_noop(self):
        assert not obs.enabled()
        s1 = obs.span("a")
        s2 = obs.span("b")
        assert s1 is s2  # no allocation on the disabled fast path
        with s1:
            pass  # no-op context manager

    def test_disabled_counter_records_nothing(self):
        obs.counter("x").add(5)
        obs.gauge("y").set(2)
        col = obs.enable()
        assert col.counters() == {}
        assert col.gauges() == {}

    def test_span_records_balanced_pair(self):
        col = obs.enable()
        with obs.span("work"):
            pass
        [jrn] = col.journals
        tags = [e[0] for e in jrn.entries]
        assert tags == [ENTER, LEAVE]
        assert jrn.entries[0][2] == jrn.entries[1][2] == "work"
        assert jrn.entries[0][1] <= jrn.entries[1][1]
        assert jrn.stack == []

    def test_nested_spans_and_iter_spans(self):
        col = obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        spans = list(col.iter_spans())
        assert [(s.name, s.depth) for s in spans] == [("inner", 1), ("outer", 0)]
        assert all(s.duration >= 0 for s in spans)

    def test_disable_mid_span_stays_balanced(self):
        col = obs.enable()
        span = obs.span("late")
        with span:
            obs.disable()
        [jrn] = col.journals
        assert [e[0] for e in jrn.entries] == [ENTER, LEAVE]

    def test_traced_decorator_obeys_flag_per_call(self):
        @obs.traced()
        def work() -> int:
            return 7

        assert work() == 7  # disabled: plain call
        col = obs.enable()
        assert work() == 7
        names = [s.name for s in col.iter_spans()]
        assert names == [work.__wrapped__.__qualname__]

    def test_counters_and_gauges_accumulate(self):
        col = obs.enable()
        c = obs.counter("cache.hit")
        c.add()
        c.add(2)
        obs.gauge("depth").set(3)
        obs.gauge("depth").set(1)
        assert col.counters() == {"cache.hit": 3.0}
        assert col.gauges() == {"depth": 1.0}
        # Samples journal the running total / last value.
        samples = [e for e in col.journals[0].entries if e[0] == SAMPLE]
        assert [s[3] for s in samples] == [1.0, 3.0, 3.0, 1.0]

    def test_counter_handles_are_shared(self):
        assert obs.counter("same") is obs.counter("same")
        assert obs.gauge("same") is obs.gauge("same")

    def test_threads_get_separate_journals(self):
        col = obs.enable()

        def worker():
            with obs.span("t"):
                pass

        t = threading.Thread(target=worker, name="obs-worker")
        with obs.span("main-span"):
            t.start()
            t.join()
        assert len(col.journals) == 2
        names = {j.thread_name for j in col.journals}
        assert "obs-worker" in names


class TestSnapshotMerge:
    def test_snapshot_is_picklable_and_merges(self):
        import pickle

        col = obs.enable(obs.Collector(origin="shard-0"))
        with obs.span("shard.phase1"):
            obs.counter("analysis.events").add(10)
        snap = pickle.loads(pickle.dumps(obs.disable().snapshot()))

        parent = obs.enable()
        with obs.span("parent"):
            obs.counter("analysis.events").add(5)
        parent.merge(snap)
        assert parent.counters() == {"analysis.events": 15.0}
        origins = [o for o, _ in parent._all_journals()]
        assert origins == ["main", "shard-0"]  # local first, merge order after


# ---------------------------------------------------------------------------
# Export + summary
# ---------------------------------------------------------------------------


class TestExport:
    def _collect(self):
        col = obs.enable()
        with obs.span("phase.a"):
            obs.counter("analysis.events").add(4)
            with obs.span("phase.b"):
                pass
        with obs.span("phase.b"):
            pass
        obs.gauge("shard.queue_depth").set(2)
        return obs.disable()

    def test_self_trace_maps_spans_and_counters(self):
        trace = self_trace(self._collect())
        assert trace.attributes[SELF_TRACE_ATTR] == "1"
        assert trace.attributes["counter.analysis.events"] == "4.0"
        assert trace.attributes["gauge.shard.queue_depth"] == "2.0"
        assert sorted(r.name for r in trace.regions) == ["phase.a", "phase.b"]
        assert [m.name for m in trace.metrics] == ["analysis.events",
                                                   "shard.queue_depth"]
        events = trace.events_of(trace.ranks[0])
        # 3 spans -> 6 enter/leave events + 2 metric samples.
        assert len(events) == 8
        assert float(events.time[0]) == 0.0  # t0-normalised

    def test_self_trace_passes_lint_with_zero_errors(self):
        from repro.lint import lint_trace

        report = lint_trace(self_trace(self._collect()))
        assert not [d for d in report.diagnostics
                    if d.severity.name.lower() == "error"]

    def test_export_is_deterministic(self, tmp_path):
        col = self._collect()
        a, b = tmp_path / "a.rpt", tmp_path / "b.rpt"
        write_self_trace(col, a)
        write_self_trace(col, b)
        assert a.read_bytes() == b.read_bytes()

    def test_open_spans_are_closed_at_snapshot_time(self):
        col = obs.enable()
        span = obs.span("unfinished")
        span.__enter__()
        trace = self_trace(obs.disable())
        events = trace.events_of(trace.ranks[0])
        assert len(events) == 2  # synthetic LEAVE appended

    def test_summarize_matches_live_and_file(self, tmp_path):
        col = self._collect()
        path = tmp_path / "s.rpt"
        write_self_trace(col, path)
        from repro.trace import read_trace

        live = summarize(col)
        from_file = summarize(read_trace(str(path)))
        assert [p.name for p in live.phases] == [p.name for p in from_file.phases]
        assert live.counters == from_file.counters
        assert live.wall_s == pytest.approx(from_file.wall_s)

    def test_summary_ratios(self):
        col = obs.enable()
        with obs.span("p"):
            obs.counter("cache.hit").add(3)
            obs.counter("cache.miss").add(1)
        summary = summarize(obs.disable())
        assert summary.cache_hit_ratio == pytest.approx(0.75)
        text = summary.format()
        assert "75.0% hit ratio" in text
        assert "p" in text


# ---------------------------------------------------------------------------
# Instrumented pipeline -> circular analysis
# ---------------------------------------------------------------------------


class TestDogfood:
    def test_session_records_phases(self, trace_path):
        from repro.core.session import AnalysisSession

        col = obs.enable()
        AnalysisSession(None, source_path=str(trace_path)).analysis()
        col = obs.disable()
        names = {s.name for s in col.iter_spans()}
        assert {"session.analysis", "fused.bootstrap", "fused.rank",
                "io.load", "stage.sos"} <= names
        counters = col.counters()
        assert counters["analysis.events"] > 0
        assert counters["io.events_loaded"] > 0

    def test_sharded_workers_ship_snapshots(self, trace_path, monkeypatch):
        from repro.core.session import AnalysisSession

        monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
        col = obs.enable()
        AnalysisSession(None, source_path=str(trace_path), shards=2).analysis()
        col = obs.disable()
        origins = {o for o, _ in col._all_journals()}
        assert {"main", "shard-0", "shard-1"} <= origins
        trace = self_trace(col)
        assert trace.num_processes >= 3  # main + worker ranks
        # Worker counters folded into the totals.
        assert col.counters()["analysis.events"] > 0

    def test_cache_counters(self, trace_path, tmp_path):
        from repro.core.session import AnalysisSession

        cache_dir = tmp_path / "cache"
        col = obs.enable()
        AnalysisSession(
            None, source_path=str(trace_path), cache_dir=cache_dir
        ).analysis()
        cold = dict(col.counters())
        AnalysisSession(
            None, source_path=str(trace_path), cache_dir=cache_dir
        ).analysis()
        warm = obs.disable().counters()
        assert cold.get("cache.miss", 0) > 0
        assert warm["cache.hit"] > cold.get("cache.hit", 0)

    def test_lint_rule_timings(self, trace_path):
        from repro.lint import lint_path

        col = obs.enable()
        lint_path(str(trace_path))
        col = obs.disable()
        timed = [k for k in col.counters() if k.startswith("lint.rule.")]
        assert timed and all(k.endswith(".s") for k in timed)


# ---------------------------------------------------------------------------
# Logging
# ---------------------------------------------------------------------------


class TestLogging:
    def test_verbosity_mapping(self):
        assert obs.verbosity_level() == logging.WARNING
        assert obs.verbosity_level(verbose=1) == logging.INFO
        assert obs.verbosity_level(verbose=2) == logging.DEBUG
        assert obs.verbosity_level(quiet=1) == logging.ERROR
        assert obs.verbosity_level(quiet=5) == logging.CRITICAL
        assert obs.verbosity_level(verbose=1, quiet=1) == logging.WARNING

    def test_configure_logging_json(self, capsys):
        import io

        stream = io.StringIO()
        logger = obs.configure_logging(
            level="INFO", fmt="json", stream=stream
        )
        obs.get_logger("core.shard").info("hello", extra={"shard": 3})
        payload = json.loads(stream.getvalue())
        assert payload["msg"] == "hello"
        assert payload["logger"] == "repro.core.shard"
        assert payload["shard"] == 3
        # Reconfiguration replaces the handler rather than stacking.
        obs.configure_logging(level="WARNING", fmt="text", stream=stream)
        assert len([h for h in logger.handlers
                    if getattr(h, "_repro_obs", False)]) == 1

    def test_env_level_fallback(self, monkeypatch):
        import io

        monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
        logger = obs.configure_logging(stream=io.StringIO())
        assert logger.level == logging.DEBUG

    def test_bad_level_raises(self):
        with pytest.raises(ValueError):
            obs.configure_logging(level="NOPE")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCLI:
    def test_analyze_self_trace_round_trip(self, trace_path, tmp_path, capsys):
        self_path = tmp_path / "self.rpt"
        assert main([
            "analyze", str(trace_path),
            "--self-trace", str(self_path), "--stats",
        ]) == 0
        out = capsys.readouterr()
        assert "phase" in out.out and "session.analysis" in out.out
        assert "wrote self-trace" in out.err
        assert self_path.exists()
        # Circular: the self-trace analyses and names an analyzer phase
        # (which phase wins is a timing race; any own-phase is truthful).
        assert main(["analyze", str(self_path)]) == 0
        report = capsys.readouterr().out
        assert re.search(r"selected: '(session|stage|fused|io|shard|lint)\.",
                         report)
        # ... and lints with zero errors.
        assert main(["lint", str(self_path)]) in (0, 1)
        lint_out = capsys.readouterr().out
        assert "0 errors" in lint_out

    def test_self_trace_bit_stable_without_mmap(
        self, trace_path, tmp_path, monkeypatch, capsys
    ):
        from repro.trace.fingerprint import fingerprint_trace
        from repro.trace.reader import TraceIndex

        self_path = tmp_path / "self.rpt"
        assert main([
            "analyze", str(trace_path), "--self-trace", str(self_path),
        ]) == 0
        capsys.readouterr()
        with_mmap = fingerprint_trace(TraceIndex(str(self_path)).load())
        monkeypatch.setenv("REPRO_NO_MMAP", "1")
        no_mmap = fingerprint_trace(TraceIndex(str(self_path)).load())
        assert with_mmap.hexdigest == no_mmap.hexdigest

    def test_stats_subcommand(self, trace_path, tmp_path, capsys):
        self_path = tmp_path / "self.rpt"
        assert main([
            "baselines", str(trace_path), "--self-trace", str(self_path),
        ]) == 0
        capsys.readouterr()
        assert main(["stats", str(self_path)]) == 0
        out = capsys.readouterr().out
        assert "wall time" in out and "fused.bootstrap" in out
        assert "not a self-trace" not in out

    def test_stats_on_plain_trace_notes_it(self, trace_path, capsys):
        assert main(["stats", str(trace_path)]) == 0
        assert "not a self-trace" in capsys.readouterr().out

    def test_stats_missing_file_exit_2(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.rpt")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_self_trace_unwritable_exit_2(self, trace_path, tmp_path, capsys):
        target = tmp_path / "no-such-dir" / "self.rpt"
        assert main([
            "analyze", str(trace_path), "--self-trace", str(target),
        ]) == 2
        assert "cannot write self-trace" in capsys.readouterr().err

    def test_verbose_flag_positions(self, trace_path, capsys):
        # Before and after the subcommand, plus --log-level override.
        assert main(["-v", "info", str(trace_path)]) == 0
        assert main(["info", str(trace_path), "-v"]) == 0
        assert main(["info", str(trace_path), "--log-level", "DEBUG"]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG
        assert main(["info", str(trace_path), "-q"]) == 0
        assert logging.getLogger("repro").level == logging.ERROR
        capsys.readouterr()

    def test_bad_log_level_exit_2(self, trace_path, capsys):
        assert main(["info", str(trace_path), "--log-level", "NOPE"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_heartbeat_logged_at_info(self, trace_path, capsys):
        import io

        stream = io.StringIO()
        obs.configure_logging(level="INFO", stream=stream)
        from repro.lint import lint_path

        lint_path(str(trace_path), shards=2, workers=1)
        obs.configure_logging(level="WARNING")  # restore default
        logged = stream.getvalue()
        assert "shard 1/2 done" in logged and "shard 2/2 done" in logged

    def test_obs_disabled_after_cli_run(self, trace_path, tmp_path, capsys):
        assert main([
            "analyze", str(trace_path),
            "--self-trace", str(tmp_path / "s.rpt"),
        ]) == 0
        capsys.readouterr()
        assert not obs.enabled()
        assert obs.collector() is None
