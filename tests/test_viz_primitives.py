"""Tests for visualization primitives: colors, font, canvas, PNG, SVG."""

import struct
import zlib

import numpy as np
import pytest

from repro.viz.canvas import Canvas
from repro.viz.colors import (
    COLD_HOT,
    GRAYS,
    HEAT,
    NAN_COLOR,
    Colormap,
    hex_color,
    region_palette,
    MPI_RED,
)
from repro.viz.font5x7 import (
    GLYPH_HEIGHT,
    GLYPH_WIDTH,
    glyph,
    render_text_mask,
    text_width,
)
from repro.viz.png import encode_png, write_png
from repro.viz.svg import SVGCanvas


class TestColormap:
    def test_endpoints(self):
        rgb = COLD_HOT(np.asarray([0.0, 1.0]))
        assert tuple(rgb[0]) == (24, 66, 161)  # cold blue
        assert tuple(rgb[1]) == (176, 15, 15)  # hot red

    def test_interpolation_midpoint(self):
        cmap = Colormap("bw", ((0.0, (0, 0, 0)), (1.0, (100, 100, 100))))
        assert tuple(cmap(np.asarray([0.5]))[0]) == (50, 50, 50)

    def test_nan_maps_to_nan_color(self):
        rgb = COLD_HOT(np.asarray([np.nan]))
        assert tuple(rgb[0]) == NAN_COLOR

    def test_out_of_range_clipped(self):
        rgb = COLD_HOT(np.asarray([-5.0, 5.0]))
        assert tuple(rgb[0]) == tuple(COLD_HOT(np.asarray([0.0]))[0])
        assert tuple(rgb[1]) == tuple(COLD_HOT(np.asarray([1.0]))[0])

    def test_custom_range(self):
        a = COLD_HOT(np.asarray([10.0]), vmin=10, vmax=20)
        b = COLD_HOT(np.asarray([0.0]))
        assert tuple(a[0]) == tuple(b[0])

    def test_degenerate_range(self):
        rgb = COLD_HOT(np.asarray([3.0]), vmin=3.0, vmax=3.0)
        assert rgb.shape == (1, 3)

    def test_2d_input(self):
        rgb = HEAT(np.ones((4, 5)))
        assert rgb.shape == (4, 5, 3)

    def test_sample(self):
        ramp = GRAYS.sample(16)
        assert ramp.shape == (16, 3)
        # Monotone brightness for a sequential map.
        brightness = ramp.astype(int).sum(axis=1)
        assert np.all(np.diff(brightness) <= 0) or np.all(np.diff(brightness) >= 0)

    def test_invalid_stops(self):
        with pytest.raises(ValueError):
            Colormap("bad", ((0.1, (0, 0, 0)), (1.0, (1, 1, 1))))
        with pytest.raises(ValueError):
            Colormap("bad", ((0.0, (0, 0, 0)), (0.0, (1, 1, 1))))

    def test_hex_color(self):
        assert hex_color((255, 0, 16)) == "#ff0010"

    def test_region_palette_pins_mpi_red(self):
        palette = region_palette(4, mpi_mask=[False, True, False, False])
        assert tuple(palette[1]) == MPI_RED
        assert tuple(palette[0]) != MPI_RED

    def test_region_palette_distinct_hues(self):
        palette = region_palette(6)
        assert len({tuple(c) for c in palette}) == 6


class TestFont:
    def test_glyph_dimensions(self):
        assert glyph("A").shape == (GLYPH_HEIGHT, GLYPH_WIDTH)

    def test_space_is_blank(self):
        assert not glyph(" ").any()

    def test_letters_are_nonblank(self):
        for char in "AgZ09#?":
            assert glyph(char).any()

    def test_unknown_renders_replacement(self):
        assert glyph("ÿ").any()

    def test_transliteration(self):
        assert np.array_equal(glyph("—"), glyph("-"))

    def test_text_width(self):
        assert text_width("") == 0
        assert text_width("ab") == 11  # 2*6 - 1
        assert text_width("ab", scale=2) == 22

    def test_render_text_mask(self):
        mask = render_text_mask("Hi")
        assert mask.shape == (7, 11)
        assert mask.any()

    def test_render_scaled(self):
        mask = render_text_mask("X", scale=3)
        assert mask.shape == (21, 15)

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            render_text_mask("x", scale=0)


class TestCanvas:
    def test_background_fill(self):
        c = Canvas(4, 3, background=(1, 2, 3))
        assert np.all(c.pixels == np.asarray([1, 2, 3], dtype=np.uint8))

    def test_fill_rect(self):
        c = Canvas(10, 10)
        c.fill_rect(2, 3, 4, 2, (255, 0, 0))
        assert tuple(c.pixels[3, 2]) == (255, 0, 0)
        assert tuple(c.pixels[4, 5]) == (255, 0, 0)
        assert tuple(c.pixels[5, 2]) != (255, 0, 0)

    def test_fill_rect_clipped(self):
        c = Canvas(5, 5)
        c.fill_rect(-3, -3, 100, 100, (9, 9, 9))
        assert np.all(c.pixels == 9)

    def test_lines(self):
        c = Canvas(10, 10)
        c.hline(0, 9, 5, (1, 1, 1))
        assert np.all(c.pixels[5, :, 0] == 1)
        c.vline(3, 0, 9, (2, 2, 2))
        assert np.all(c.pixels[:, 3, 0] == 2)

    def test_line_diagonal(self):
        c = Canvas(10, 10)
        c.line(0, 0, 9, 9, (7, 7, 7))
        for i in range(10):
            assert tuple(c.pixels[i, i]) == (7, 7, 7)

    def test_line_clipped(self):
        c = Canvas(5, 5)
        c.line(-10, -10, 20, 20, (7, 7, 7))  # must not raise
        assert tuple(c.pixels[2, 2]) == (7, 7, 7)

    def test_rect_outline(self):
        c = Canvas(10, 10)
        c.rect(1, 1, 5, 4, (3, 3, 3))
        assert tuple(c.pixels[1, 1]) == (3, 3, 3)
        assert tuple(c.pixels[4, 5]) == (3, 3, 3)
        assert tuple(c.pixels[2, 2]) != (3, 3, 3)

    def test_blit(self):
        c = Canvas(6, 6)
        block = np.full((2, 2, 3), 99, dtype=np.uint8)
        c.blit(2, 2, block)
        assert tuple(c.pixels[3, 3]) == (99, 99, 99)

    def test_blit_clipped(self):
        c = Canvas(4, 4)
        block = np.full((3, 3, 3), 50, dtype=np.uint8)
        c.blit(-1, -1, block)
        assert tuple(c.pixels[0, 0]) == (50, 50, 50)
        c.blit(3, 3, block)
        assert tuple(c.pixels[3, 3]) == (50, 50, 50)

    def test_text_draws_pixels(self):
        c = Canvas(40, 12)
        c.text(1, 1, "Hi", color=(0, 0, 0))
        assert np.any(np.all(c.pixels == 0, axis=2))

    def test_text_anchors(self):
        c = Canvas(40, 20)
        c.text(20, 10, "M", anchor="cm")
        c.text(39, 19, "M", anchor="rb")  # must not raise, draws clipped

    def test_text_rotated(self):
        c = Canvas(12, 40)
        c.text_rotated(2, 20, "up")
        assert np.any(np.all(c.pixels == np.asarray([30, 30, 30]), axis=2))

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            Canvas(0, 5)


class TestPNG:
    def decode(self, data):
        """Minimal PNG decoder for round-trip checks (filter 0 only)."""
        assert data[:8] == b"\x89PNG\r\n\x1a\n"
        pos = 8
        width = height = None
        idat = b""
        while pos < len(data):
            (length,) = struct.unpack(">I", data[pos : pos + 4])
            tag = data[pos + 4 : pos + 8]
            payload = data[pos + 8 : pos + 8 + length]
            if tag == b"IHDR":
                width, height = struct.unpack(">II", payload[:8])
            elif tag == b"IDAT":
                idat += payload
            (crc,) = struct.unpack(">I", data[pos + 8 + length : pos + 12 + length])
            assert crc == zlib.crc32(tag + payload) & 0xFFFFFFFF
            pos += 12 + length
        raw = zlib.decompress(idat)
        arr = np.frombuffer(raw, dtype=np.uint8).reshape(height, 1 + width * 3)
        assert np.all(arr[:, 0] == 0)  # filter type 0
        return arr[:, 1:].reshape(height, width, 3)

    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        img = rng.integers(0, 256, size=(13, 7, 3), dtype=np.uint8)
        assert np.array_equal(self.decode(encode_png(img)), img)

    def test_write_png(self, tmp_path):
        img = np.zeros((4, 4, 3), dtype=np.uint8)
        path = tmp_path / "x.png"
        write_png(img, path)
        assert np.array_equal(self.decode(path.read_bytes()), img)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            encode_png(np.zeros((4, 4), dtype=np.uint8))
        with pytest.raises(ValueError):
            encode_png(np.zeros((4, 4, 3), dtype=np.float64))
        with pytest.raises(ValueError):
            encode_png(np.zeros((0, 4, 3), dtype=np.uint8))


class TestSVG:
    def test_document_structure(self):
        svg = SVGCanvas(100, 50)
        svg.rect(0, 0, 10, 10, "#ff0000")
        svg.line(0, 0, 10, 10)
        svg.text(5, 5, "hello")
        text = svg.tostring()
        assert text.startswith('<?xml version="1.0"')
        assert '<svg xmlns="http://www.w3.org/2000/svg"' in text
        assert "<rect" in text and "<line" in text and ">hello</text>" in text
        assert text.rstrip().endswith("</svg>")

    def test_title_tooltip(self):
        svg = SVGCanvas(10, 10)
        svg.rect(0, 0, 1, 1, "#000", title="rank 3 & more")
        assert "<title>rank 3 &amp; more</title>" in svg.tostring()

    def test_escaping(self):
        svg = SVGCanvas(10, 10)
        svg.text(0, 0, "<b>&</b>")
        assert "&lt;b&gt;&amp;&lt;/b&gt;" in svg.tostring()

    def test_write(self, tmp_path):
        svg = SVGCanvas(10, 10)
        path = tmp_path / "x.svg"
        svg.write(path)
        assert path.read_text().startswith("<?xml")

    def test_rotated_text(self):
        svg = SVGCanvas(10, 10)
        svg.text(5, 5, "v", rotate=-90)
        assert "rotate(-90" in svg.tostring()

    def test_groups(self):
        svg = SVGCanvas(10, 10)
        svg.group_start(title="grp")
        svg.group_end()
        text = svg.tostring()
        assert "<g>" in text and "</g>" in text

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            SVGCanvas(0, 10)
