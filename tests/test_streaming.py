"""Tests for the streaming (in-situ) analyzer."""

import numpy as np
import pytest

from repro.core import analyze_trace
from repro.core.streaming import StreamingAnalyzer
from repro.sim.workloads.synthetic import SyntheticConfig, generate
from repro.trace.builder import TraceBuilder
from repro.trace.definitions import Paradigm


@pytest.fixture(scope="module")
def stream_trace():
    config = SyntheticConfig(
        ranks=6,
        iterations=20,
        slow_ranks={4: 1.5},
        outliers={(2, 14): 0.08},
        seed=11,
    )
    return generate(config)


def feed_all(analyzer, trace, chunk=64):
    for rank in trace.ranks:
        events = trace.events_of(rank)
        for i in range(0, len(events), chunk):
            analyzer.feed(rank, events[i : i + chunk])


class TestBatchEquivalence:
    def test_sos_values_match_batch(self, stream_trace):
        batch = analyze_trace(stream_trace)
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant=batch.dominant_name,
        )
        feed_all(analyzer, stream_trace)
        for rank in stream_trace.ranks:
            np.testing.assert_allclose(
                analyzer.sos_series(rank), batch.sos[rank].sos
            )

    def test_chunk_size_does_not_matter(self, stream_trace):
        results = []
        for chunk in (1, 7, 1000):
            analyzer = StreamingAnalyzer(
                stream_trace.regions, stream_trace.num_processes,
                dominant="iteration",
            )
            feed_all(analyzer, stream_trace, chunk=chunk)
            results.append(analyzer.sos_series(0))
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])

    def test_segment_metadata(self, stream_trace):
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration",
        )
        feed_all(analyzer, stream_trace)
        segments = analyzer.segments(3)
        assert len(segments) == 20
        assert all(s.rank == 3 for s in segments)
        assert [s.index for s in segments] == list(range(20))
        assert all(s.duration >= s.sos >= 0 for s in segments)


class TestOnlineAlerts:
    def test_outlier_alerts_immediately(self, stream_trace):
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration",
        )
        feed_all(analyzer, stream_trace)
        assert len(analyzer.alerts) >= 1
        alert = analyzer.alerts[0]
        assert alert.segment.rank == 2
        assert alert.segment.index == 14
        assert alert.zscore > analyzer.alert_threshold

    def test_clean_run_produces_no_alerts(self):
        trace = generate(SyntheticConfig(ranks=4, iterations=15, seed=1))
        analyzer = StreamingAnalyzer(
            trace.regions, trace.num_processes, dominant="iteration"
        )
        feed_all(analyzer, trace)
        assert analyzer.alerts == []

    def test_alert_str(self, stream_trace):
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration",
        )
        feed_all(analyzer, stream_trace)
        assert "rank 2" in str(analyzer.alerts[0])

    def test_snapshot_hot_ranks(self, stream_trace):
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration",
        )
        feed_all(analyzer, stream_trace)
        assert 4 in analyzer.snapshot_hot_ranks()


class TestWarmupSelection:
    def test_auto_selects_dominant(self, stream_trace):
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            warmup_invocations=60,
        )
        feed_all(analyzer, stream_trace)
        assert analyzer.dominant_name == "iteration"
        # Segments only from the selection point onward.
        total = sum(len(analyzer.segments(r)) for r in stream_trace.ranks)
        assert 0 < total <= 6 * 20

    def test_select_now_without_data(self):
        from repro.trace.definitions import RegionRegistry

        regions = RegionRegistry()
        regions.register("f")
        analyzer = StreamingAnalyzer(regions, 4)
        with pytest.raises(ValueError, match="no dominant-function candidate"):
            analyzer.select_now()

    def test_select_now_idempotent(self, stream_trace):
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration",
        )
        assert analyzer.select_now() == stream_trace.regions.id_of("iteration")

    def test_sync_regions_never_selected(self):
        tb = TraceBuilder()
        tb.region("MPI_Allreduce", paradigm=Paradigm.MPI)
        tb.region("step")
        p = tb.process(0)
        for i in range(30):
            p.call(2.0 * i, 2.0 * i + 1.6, "MPI_Allreduce")
            p.call(2.0 * i + 1.6, 2.0 * i + 2.0, "step")
        trace = tb.freeze()
        analyzer = StreamingAnalyzer(trace.regions, 1, warmup_invocations=40)
        analyzer.feed(0, trace.events_of(0))
        analyzer.select_now()
        assert analyzer.dominant_name == "step"


class TestStreamValidation:
    def test_out_of_order_chunk_rejected(self, stream_trace):
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration",
        )
        events = stream_trace.events_of(0)
        analyzer.feed(0, events[10:20])
        with pytest.raises(ValueError, match="not time-ordered"):
            analyzer.feed(0, events[0:5])

    def test_mismatched_leave_rejected(self):
        tb = TraceBuilder()
        tb.region("a")
        tb.region("b")
        p = tb.process(0)
        p.enter(0.0, "a")
        p.enter(1.0, "b")
        p.leave(2.0)
        p.leave(3.0)
        trace = tb.freeze()
        analyzer = StreamingAnalyzer(trace.regions, 1, dominant="a")
        events = trace.events_of(0)
        # Corrupt: drop the inner leave so the outer one mismatches.
        import numpy as np

        keep = np.asarray([True, True, False, True])
        with pytest.raises(ValueError, match="does not match"):
            analyzer.feed(0, events.select(keep))

    def test_bad_process_count(self, stream_trace):
        with pytest.raises(ValueError):
            StreamingAnalyzer(stream_trace.regions, 0)
