"""Tests for the streaming (in-situ) analyzer."""

import numpy as np
import pytest

from repro.core import analyze_trace
from repro.core.streaming import StreamingAnalyzer
from repro.sim.workloads.synthetic import SyntheticConfig, generate
from repro.trace.builder import TraceBuilder
from repro.trace.definitions import Paradigm


@pytest.fixture(scope="module")
def stream_trace():
    config = SyntheticConfig(
        ranks=6,
        iterations=20,
        slow_ranks={4: 1.5},
        outliers={(2, 14): 0.08},
        seed=11,
    )
    return generate(config)


def feed_all(analyzer, trace, chunk=64):
    for rank in trace.ranks:
        events = trace.events_of(rank)
        for i in range(0, len(events), chunk):
            analyzer.feed(rank, events[i : i + chunk])


class TestBatchEquivalence:
    def test_sos_values_match_batch(self, stream_trace):
        batch = analyze_trace(stream_trace)
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant=batch.dominant_name,
        )
        feed_all(analyzer, stream_trace)
        for rank in stream_trace.ranks:
            np.testing.assert_allclose(
                analyzer.sos_series(rank), batch.sos[rank].sos
            )

    def test_chunk_size_does_not_matter(self, stream_trace):
        results = []
        for chunk in (1, 7, 1000):
            analyzer = StreamingAnalyzer(
                stream_trace.regions, stream_trace.num_processes,
                dominant="iteration",
            )
            feed_all(analyzer, stream_trace, chunk=chunk)
            results.append(analyzer.sos_series(0))
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])

    def test_segment_metadata(self, stream_trace):
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration",
        )
        feed_all(analyzer, stream_trace)
        segments = analyzer.segments(3)
        assert len(segments) == 20
        assert all(s.rank == 3 for s in segments)
        assert [s.index for s in segments] == list(range(20))
        assert all(s.duration >= s.sos >= 0 for s in segments)


class TestOnlineAlerts:
    def test_outlier_alerts_immediately(self, stream_trace):
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration",
        )
        feed_all(analyzer, stream_trace)
        assert len(analyzer.alerts) >= 1
        alert = analyzer.alerts[0]
        assert alert.segment.rank == 2
        assert alert.segment.index == 14
        assert alert.zscore > analyzer.alert_threshold

    def test_clean_run_produces_no_alerts(self):
        trace = generate(SyntheticConfig(ranks=4, iterations=15, seed=1))
        analyzer = StreamingAnalyzer(
            trace.regions, trace.num_processes, dominant="iteration"
        )
        feed_all(analyzer, trace)
        assert analyzer.alerts == []

    def test_alert_str(self, stream_trace):
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration",
        )
        feed_all(analyzer, stream_trace)
        assert "rank 2" in str(analyzer.alerts[0])

    def test_snapshot_hot_ranks(self, stream_trace):
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration",
        )
        feed_all(analyzer, stream_trace)
        assert 4 in analyzer.snapshot_hot_ranks()


class TestWarmupSelection:
    def test_auto_selects_dominant(self, stream_trace):
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            warmup_invocations=60,
        )
        feed_all(analyzer, stream_trace)
        assert analyzer.dominant_name == "iteration"
        # Segments only from the selection point onward.
        total = sum(len(analyzer.segments(r)) for r in stream_trace.ranks)
        assert 0 < total <= 6 * 20

    def test_select_now_without_data(self):
        from repro.trace.definitions import RegionRegistry

        regions = RegionRegistry()
        regions.register("f")
        analyzer = StreamingAnalyzer(regions, 4)
        with pytest.raises(ValueError, match="no dominant-function candidate"):
            analyzer.select_now()

    def test_select_now_idempotent(self, stream_trace):
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration",
        )
        assert analyzer.select_now() == stream_trace.regions.id_of("iteration")

    def test_sync_regions_never_selected(self):
        tb = TraceBuilder()
        tb.region("MPI_Allreduce", paradigm=Paradigm.MPI)
        tb.region("step")
        p = tb.process(0)
        for i in range(30):
            p.call(2.0 * i, 2.0 * i + 1.6, "MPI_Allreduce")
            p.call(2.0 * i + 1.6, 2.0 * i + 2.0, "step")
        trace = tb.freeze()
        analyzer = StreamingAnalyzer(trace.regions, 1, warmup_invocations=40)
        analyzer.feed(0, trace.events_of(0))
        analyzer.select_now()
        assert analyzer.dominant_name == "step"


class TestStreamValidation:
    def test_out_of_order_chunk_rejected(self, stream_trace):
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration",
        )
        events = stream_trace.events_of(0)
        analyzer.feed(0, events[10:20])
        with pytest.raises(ValueError, match="not time-ordered"):
            analyzer.feed(0, events[0:5])

    def test_mismatched_leave_rejected(self):
        tb = TraceBuilder()
        tb.region("a")
        tb.region("b")
        p = tb.process(0)
        p.enter(0.0, "a")
        p.enter(1.0, "b")
        p.leave(2.0)
        p.leave(3.0)
        trace = tb.freeze()
        analyzer = StreamingAnalyzer(trace.regions, 1, dominant="a")
        events = trace.events_of(0)
        # Corrupt: drop the inner leave so the outer one mismatches.
        import numpy as np

        keep = np.asarray([True, True, False, True])
        with pytest.raises(ValueError, match="does not match"):
            analyzer.feed(0, events.select(keep))

    def test_bad_process_count(self, stream_trace):
        with pytest.raises(ValueError):
            StreamingAnalyzer(stream_trace.regions, 0)


class TestStreamDiagnostics:
    """Malformed streams raise the offline validator's diagnostics."""

    def test_out_of_order_after_empty_chunk(self, stream_trace):
        """Regression: an empty ``feed()`` must not reset the rank's
        time horizon — a later out-of-order chunk still fails."""
        from repro.core.streaming import StreamOrderError

        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration",
        )
        events = stream_trace.events_of(0)
        analyzer.feed(0, events[10:20])
        analyzer.feed(0, events[0:0])  # empty chunk: a no-op
        with pytest.raises(StreamOrderError, match="not time-ordered") as err:
            analyzer.feed(0, events[0:5])
        assert err.value.code == "TL004"
        assert err.value.legacy_code == "time-order"

    def test_mismatched_leave_code(self):
        from repro.core.streaming import StreamStructureError

        tb = TraceBuilder()
        tb.region("a")
        tb.region("b")
        p = tb.process(0)
        p.enter(0.0, "a")
        p.enter(1.0, "b")
        p.leave(2.0)
        p.leave(3.0)
        events = tb.freeze().events_of(0)
        keep = np.asarray([True, True, False, True])
        for dominant in ("a", None):  # vectorised and warm-up paths
            analyzer = StreamingAnalyzer(tb.freeze().regions, 1,
                                         dominant=dominant)
            with pytest.raises(StreamStructureError, match="does not match") as err:
                analyzer.feed(0, events.select(keep))
            assert err.value.code == "TL003"
            assert err.value.legacy_code == "mismatched-leave"

    def test_unmatched_leave_code(self):
        from repro.core.streaming import StreamStructureError

        tb = TraceBuilder()
        tb.region("a")
        p = tb.process(0)
        p.enter(0.0, "a")
        p.leave(1.0)
        events = tb.freeze().events_of(0)
        for dominant in ("a", None):
            analyzer = StreamingAnalyzer(tb.freeze().regions, 1,
                                         dominant=dominant)
            with pytest.raises(StreamStructureError) as err:
                analyzer.feed(0, events[1:])  # bare leave, empty stack
            assert err.value.code == "TL001"
            assert err.value.legacy_code == "unmatched-leave"

    def test_mismatch_across_chunk_boundary(self):
        """A leave closing a frame carried over from an earlier chunk
        is checked against that carried frame."""
        from repro.core.streaming import StreamStructureError

        tb = TraceBuilder()
        tb.region("a")
        tb.region("b")
        p = tb.process(0)
        p.enter(0.0, "a")
        p.enter(1.0, "b")
        p.leave(2.0)
        p.leave(3.0)
        events = tb.freeze().events_of(0)
        keep = np.asarray([True, True, False, True])
        bad = events.select(keep)
        analyzer = StreamingAnalyzer(tb.freeze().regions, 1, dominant="a")
        analyzer.feed(0, bad[:2])  # open a, b in one chunk
        with pytest.raises(StreamStructureError) as err:
            analyzer.feed(0, bad[2:])  # leave of a against open b
        assert err.value.code == "TL003"


class TestBoundedHistory:
    def test_eviction_keeps_totals_and_indices(self, stream_trace):
        bounded = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration", history_limit=5,
        )
        unbounded = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration",
        )
        feed_all(bounded, stream_trace)
        feed_all(unbounded, stream_trace)
        for rank in stream_trace.ranks:
            segments = bounded.segments(rank)
            assert len(segments) == 5
            # Indices keep counting globally across evictions.
            assert [s.index for s in segments] == list(range(15, 20))
        # 20 segments per rank, 5 retained -> 15 evictions per rank.
        assert bounded.window_evictions == 15 * len(stream_trace.ranks)
        # Running totals (and hence hot-rank snapshots) are unaffected.
        assert bounded.per_rank_total() == unbounded.per_rank_total()
        assert bounded.snapshot_hot_ranks() == unbounded.snapshot_hot_ranks()

    def test_alerts_survive_eviction(self, stream_trace):
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration", history_limit=2,
        )
        feed_all(analyzer, stream_trace)
        assert analyzer.alerts
        assert analyzer.alerts[0].segment.rank == 2
        assert analyzer.alerts[0].segment.index == 14

    def test_invalid_limit(self, stream_trace):
        with pytest.raises(ValueError, match="history_limit"):
            StreamingAnalyzer(
                stream_trace.regions, stream_trace.num_processes,
                history_limit=0,
            )


class TestCandidates:
    def test_rolling_candidates_from_warmup(self, stream_trace):
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            warmup_invocations=10**9,  # never auto-select
        )
        feed_all(analyzer, stream_trace)
        ranked = analyzer.candidates(3)
        assert ranked
        names = [stream_trace.regions[r].name for r, _, _ in ranked]
        assert names[0] == "iteration"
        # Inclusive-descending, non-sync only, counts positive.
        inclusive = [t for _, _, t in ranked]
        assert inclusive == sorted(inclusive, reverse=True)
        assert all(count > 0 for _, count, _ in ranked)
        mask = analyzer._sync_mask
        assert not any(mask[r] for r, _, _ in ranked)


class TestConsumeCursor:
    def test_feed_cursor_equivalent(self, stream_trace):
        from repro.trace.cursor import FeedCursor

        reference = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration",
        )
        feed_all(reference, stream_trace)

        from repro.trace import Trace
        from repro.trace.events import EventList

        skeleton = Trace(regions=stream_trace.regions,
                         metrics=stream_trace.metrics)
        for rank in stream_trace.ranks:
            skeleton.add_process(
                stream_trace.process(rank).location, EventList.empty()
            )
        cursor = FeedCursor(skeleton)
        for rank in stream_trace.ranks:
            events = stream_trace.events_of(rank)
            for i in range(0, len(events), 64):
                cursor.push(rank, events[i : i + 64])
        cursor.close()
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration",
        )
        fed = analyzer.consume(cursor)
        assert fed == stream_trace.num_events
        for rank in stream_trace.ranks:
            np.testing.assert_array_equal(
                analyzer.sos_series(rank), reference.sos_series(rank)
            )

    def test_index_cursor_equivalent(self, stream_trace, tmp_path):
        from repro.core.streaming import STREAM_COLUMNS
        from repro.trace import write_binary
        from repro.trace.reader import TraceIndex

        reference = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration",
        )
        feed_all(reference, stream_trace)

        path = tmp_path / "run.rpt"
        write_binary(stream_trace, path, version=2, codec="raw")
        cursor = TraceIndex(path).cursor(
            columns=STREAM_COLUMNS, chunk_events=128
        )
        analyzer = StreamingAnalyzer(
            stream_trace.regions, stream_trace.num_processes,
            dominant="iteration",
        )
        analyzer.consume(cursor)
        for rank in stream_trace.ranks:
            np.testing.assert_array_equal(
                analyzer.sos_series(rank), reference.sos_series(rank)
            )


class TestMetricWindow:
    def _metric_trace(self):
        from repro.trace import Location, Trace
        from repro.trace.events import EventKind, EventListBuilder

        trace = Trace(name="metrics")
        trace.regions.register("step")
        trace.metrics.register("flops")
        b = EventListBuilder()
        for i in range(8):
            b.append(float(i), EventKind.ENTER, ref=0)
            b.metric(i + 0.25, metric=0, value=float(10 * i))
            b.metric(i + 0.75, metric=0, value=float(10 * i + 2))
            b.append(i + 0.9, EventKind.LEAVE, ref=0)
        trace.add_process(Location(0, "P0"), b.freeze())
        return trace

    def test_binned_means(self):
        trace = self._metric_trace()
        analyzer = StreamingAnalyzer(
            trace.regions, 1, dominant="step", metric_window=2.0
        )
        analyzer.feed(0, trace.events_of(0))
        starts, means = analyzer.metric_series(0, 0)
        np.testing.assert_array_equal(starts, [0.0, 2.0, 4.0, 6.0])
        # Bin [0, 2): samples 0, 2, 10, 12 -> mean 6.
        np.testing.assert_allclose(means[0], 6.0)

    def test_chunking_invariant(self):
        trace = self._metric_trace()
        whole = StreamingAnalyzer(
            trace.regions, 1, dominant="step", metric_window=2.0
        )
        whole.feed(0, trace.events_of(0))
        chunked = StreamingAnalyzer(
            trace.regions, 1, dominant="step", metric_window=2.0
        )
        events = trace.events_of(0)
        for i in range(0, len(events), 3):
            chunked.feed(0, events[i : i + 3])
        for got, want in zip(
            chunked.metric_series(0, 0), whole.metric_series(0, 0)
        ):
            np.testing.assert_array_equal(got, want)

    def test_disabled_by_default(self):
        trace = self._metric_trace()
        analyzer = StreamingAnalyzer(trace.regions, 1, dominant="step")
        analyzer.feed(0, trace.events_of(0))
        starts, means = analyzer.metric_series(0, 0)
        assert starts.size == 0 and means.size == 0

    def test_invalid_window(self):
        trace = self._metric_trace()
        with pytest.raises(ValueError, match="metric_window"):
            StreamingAnalyzer(trace.regions, 1, metric_window=0.0)
