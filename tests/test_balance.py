"""Tests for space-filling curves, partitioning and the FD4 balancer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.balance import (
    DynamicLoadBalancer,
    curve_order,
    hilbert_coords,
    hilbert_index,
    imbalance_of,
    morton_coords,
    morton_index,
    partition_cost,
    partition_exact,
    partition_greedy,
    partition_uniform,
    static_decomposition,
)


class TestMorton:
    def test_known_values(self):
        assert morton_index(0, 0) == 0
        assert morton_index(1, 0) == 1
        assert morton_index(0, 1) == 2
        assert morton_index(1, 1) == 3
        assert morton_index(2, 2) == 12

    def test_roundtrip(self):
        idx = np.arange(1024)
        x, y = morton_coords(idx, order=5)
        np.testing.assert_array_equal(morton_index(x, y, order=5), idx)

    def test_bijective_on_grid(self):
        xs, ys = np.meshgrid(np.arange(32), np.arange(32))
        idx = morton_index(xs.ravel(), ys.ravel(), order=5)
        assert len(np.unique(idx)) == 1024

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="exceed"):
            morton_index(16, 0, order=4)
        with pytest.raises(ValueError, match="non-negative"):
            morton_index(-1, 0)


class TestHilbert:
    def test_bijective(self):
        xs, ys = np.meshgrid(np.arange(16), np.arange(16))
        idx = hilbert_index(xs.ravel(), ys.ravel(), order=4)
        assert sorted(idx.tolist()) == list(range(256))

    def test_roundtrip(self):
        idx = np.arange(256)
        x, y = hilbert_coords(idx, order=4)
        np.testing.assert_array_equal(hilbert_index(x, y, order=4), idx)

    def test_adjacency_property(self):
        """Consecutive Hilbert indices are grid neighbours — the
        property that makes SFC partitions spatially compact."""
        x, y = hilbert_coords(np.arange(4096), order=6)
        manhattan = np.abs(np.diff(x.astype(int))) + np.abs(
            np.diff(y.astype(int))
        )
        assert np.all(manhattan == 1)

    def test_morton_lacks_adjacency(self):
        x, y = morton_coords(np.arange(256), order=4)
        manhattan = np.abs(np.diff(x.astype(int))) + np.abs(
            np.diff(y.astype(int))
        )
        assert np.any(manhattan > 1)

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, x, y):
        idx = hilbert_index(np.asarray([x]), np.asarray([y]), order=8)
        rx, ry = hilbert_coords(idx, order=8)
        assert (int(rx[0]), int(ry[0])) == (x, y)

    def test_invalid_order(self):
        with pytest.raises(ValueError, match="order"):
            hilbert_index(0, 0, order=0)


class TestCurveOrder:
    @pytest.mark.parametrize("curve", ["hilbert", "morton", "row"])
    def test_is_permutation(self, curve):
        order = curve_order(7, 5, curve=curve)
        assert sorted(order.tolist()) == list(range(35))

    def test_row_order(self):
        order = curve_order(3, 2, curve="row")
        assert list(order) == [0, 1, 2, 3, 4, 5]

    def test_unknown_curve(self):
        with pytest.raises(ValueError, match="unknown curve"):
            curve_order(4, 4, curve="dragon")

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            curve_order(0, 4)


class TestPartitioning:
    def test_uniform(self):
        b = partition_uniform(10, 3)
        assert b[0] == 0 and b[-1] == 10
        assert len(b) == 4

    def test_exact_on_equal_weights(self):
        b = partition_exact(np.ones(12), 4)
        assert list(partition_cost(np.ones(12), b)) == [3, 3, 3, 3]

    def test_exact_beats_or_ties_greedy(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            w = rng.random(rng.integers(5, 200)) + 0.001
            p = int(rng.integers(2, 12))
            ce = partition_cost(w, partition_exact(w, p)).max()
            cg = partition_cost(w, partition_greedy(w, p)).max()
            assert ce <= cg + 1e-9

    def test_exact_is_optimal_small(self):
        """Brute-force check on small instances."""
        from itertools import combinations

        rng = np.random.default_rng(1)
        for _ in range(5):
            n, p = 8, 3
            w = rng.random(n) + 0.01
            best = np.inf
            for cuts in combinations(range(1, n), p - 1):
                b = np.asarray((0, *cuts, n))
                best = min(best, partition_cost(w, b).max())
            got = partition_cost(w, partition_exact(w, p)).max()
            assert got == pytest.approx(best, rel=1e-9)

    def test_single_part(self):
        w = np.asarray([1.0, 2.0, 3.0])
        b = partition_exact(w, 1)
        assert list(b) == [0, 3]

    def test_more_parts_than_items(self):
        b = partition_exact(np.asarray([5.0, 1.0]), 4)
        costs = partition_cost(np.asarray([5.0, 1.0]), b)
        assert costs.max() == 5.0

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            partition_exact(np.asarray([-1.0, 2.0]), 2)

    def test_rejects_bad_parts(self):
        with pytest.raises(ValueError):
            partition_greedy(np.ones(4), 0)

    def test_imbalance_of(self):
        w = np.ones(8)
        assert imbalance_of(w, partition_exact(w, 4)) == 1.0

    @given(
        st.lists(st.floats(min_value=0.001, max_value=10), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_properties(self, weights, parts):
        w = np.asarray(weights)
        b = partition_exact(w, parts)
        assert b[0] == 0 and b[-1] == len(w)
        assert np.all(np.diff(b) >= 0)
        costs = partition_cost(w, b)
        assert costs.sum() == pytest.approx(w.sum())
        # Optimal bottleneck is never below max weight or mean load.
        assert costs.max() >= w.max() - 1e-9
        assert costs.max() >= w.sum() / parts - 1e-9


class TestStaticDecomposition:
    def test_even_grid(self):
        a = static_decomposition(4, 4, 2, 2).reshape(4, 4)
        assert a[0, 0] == 0 and a[0, 3] == 1
        assert a[3, 0] == 2 and a[3, 3] == 3

    def test_all_ranks_used(self):
        a = static_decomposition(30, 30, 10, 10)
        assert sorted(set(a.tolist())) == list(range(100))

    def test_uneven_grid(self):
        a = static_decomposition(7, 5, 3, 2)
        assert sorted(set(a.tolist())) == list(range(6))

    def test_errors(self):
        with pytest.raises(ValueError):
            static_decomposition(2, 2, 4, 4)
        with pytest.raises(ValueError):
            static_decomposition(4, 4, 0, 2)


class TestDynamicLoadBalancer:
    def test_first_balance_always_partitions(self):
        lb = DynamicLoadBalancer(8, 8, 4)
        result = lb.balance(np.ones(64))
        assert result.rebalanced
        assert result.imbalance == 1.0
        assert sorted(set(result.assignment.tolist())) == [0, 1, 2, 3]

    def test_hysteresis_avoids_churn(self):
        lb = DynamicLoadBalancer(8, 8, 4, threshold=1.2)
        lb.balance(np.ones(64))
        w = np.ones(64)
        w[0] = 1.5  # small perturbation below threshold
        result = lb.balance(w)
        assert not result.rebalanced
        assert result.migrated_cells == 0

    def test_rebalances_on_big_shift(self):
        lb = DynamicLoadBalancer(8, 8, 4, threshold=1.05)
        lb.balance(np.ones(64))
        w = np.ones(64)
        w[:16] = 20.0
        result = lb.balance(w)
        assert result.rebalanced
        assert result.migrated_cells > 0
        assert result.imbalance < 1.6

    def test_partitions_are_contiguous_along_curve(self):
        lb = DynamicLoadBalancer(8, 8, 4)
        result = lb.balance(np.ones(64))
        ranks_in_curve_order = result.assignment[lb.order]
        changes = np.count_nonzero(np.diff(ranks_in_curve_order))
        assert changes == 3  # p-1 boundaries

    def test_greedy_method(self):
        lb = DynamicLoadBalancer(8, 8, 4, method="greedy")
        assert lb.balance(np.ones(64)).rebalanced

    def test_current_load_requires_assignment(self):
        lb = DynamicLoadBalancer(4, 4, 2)
        with pytest.raises(RuntimeError):
            lb.current_load(np.ones(16))

    def test_weight_length_checked(self):
        lb = DynamicLoadBalancer(4, 4, 2)
        with pytest.raises(ValueError, match="expected 16"):
            lb.balance(np.ones(5))

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            DynamicLoadBalancer(2, 2, 10)
        with pytest.raises(ValueError):
            DynamicLoadBalancer(4, 4, 2, method="magic")
        with pytest.raises(ValueError):
            DynamicLoadBalancer(4, 4, 2, threshold=0.5)

    def test_balances_skewed_load_well(self):
        rng = np.random.default_rng(0)
        lb = DynamicLoadBalancer(16, 16, 8)
        w = rng.random(256) + 0.05
        w[:30] *= 40
        result = lb.balance(w)
        assert result.imbalance < 1.3
