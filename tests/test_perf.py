"""Tests for repro.perf: benchmark history, variation detection, CLI.

The regression fixtures under ``tests/perf_history/`` are also the CI
gate's self-test: ``regression.jsonl`` carries an injected 2x slowdown
the checker must flag by name, ``steady.jsonl`` the same series without
it — the checker must stay quiet.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.perf import (
    Finding,
    PerfHistory,
    check_history,
    format_findings,
    format_report,
    machine_fingerprint,
    record_bench_files,
)

FIXTURES = Path(__file__).parent / "perf_history"


def _row(
    bench="fastpath",
    test="t",
    wall_s=0.1,
    sha="abc1234",
    machine="m1",
    recorded_at=0.0,
):
    return {
        "bench": bench,
        "test": test,
        "wall_s": wall_s,
        "git_sha": sha,
        "machine": machine,
        "recorded_at": recorded_at,
    }


class TestHistory:
    def test_load_save_round_trip(self, tmp_path):
        path = tmp_path / "h.jsonl"
        history = PerfHistory()
        history.add(_row())
        history.add(_row(test="u", wall_s=0.2))
        history.save(path)
        again = PerfHistory.load(path)
        assert again.rows == history.rows
        # Atomic write: no .tmp left behind.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["h.jsonl"]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert PerfHistory.load(tmp_path / "nope.jsonl").rows == []

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            PerfHistory.load(path)

    def test_add_replaces_same_key(self):
        history = PerfHistory()
        history.add(_row(wall_s=0.1))
        history.add(_row(wall_s=0.3))  # same (bench, test, sha, machine)
        assert len(history.rows) == 1
        assert history.rows[0]["wall_s"] == 0.3
        history.add(_row(sha="def5678", wall_s=0.2))
        assert len(history.rows) == 2

    def test_series_groups_and_sorts_by_time(self):
        history = PerfHistory()
        history.add(_row(sha="b", wall_s=0.2, recorded_at=2.0))
        history.add(_row(sha="a", wall_s=0.1, recorded_at=1.0))
        history.add(_row(test="u", sha="a", wall_s=0.5, recorded_at=1.0))
        series = history.series()
        assert set(series) == {
            ("fastpath", "t", "m1"), ("fastpath", "u", "m1"),
        }
        assert [r["wall_s"] for r in series[("fastpath", "t", "m1")]] == [
            0.1, 0.2,
        ]

    def test_record_bench_files(self, tmp_path):
        bench = tmp_path / "BENCH_demo.json"
        bench.write_text(json.dumps({
            "bench": "demo",
            "git_sha": "cafe123",
            "results": {
                "test_a": {"wall_s": 0.5, "timer": "benchmark"},
                "test_b": {"wall_s": 1.5},
                "not_a_result": "skipped",
            },
        }))
        history = PerfHistory()
        n = record_bench_files(
            history, [bench], machine="m1", timestamp=42.0
        )
        assert n == 2
        by_test = {r["test"]: r for r in history.rows}
        assert by_test["test_a"]["wall_s"] == 0.5
        assert by_test["test_a"]["git_sha"] == "cafe123"
        assert by_test["test_a"]["recorded_at"] == 42.0
        # Re-record is idempotent (same key -> in-place replace).
        assert record_bench_files(
            history, [bench], machine="m1", timestamp=43.0
        ) == 2
        assert len(history.rows) == 2

    def test_machine_fingerprint_is_stable(self):
        fp = machine_fingerprint()
        assert fp == machine_fingerprint()
        assert len(fp) == 12


class TestDetection:
    def _history(self, walls, bench="b", test="t"):
        history = PerfHistory()
        for i, w in enumerate(walls):
            history.add(_row(
                bench=bench, test=test, wall_s=w,
                sha=f"{i:07x}", machine="m1", recorded_at=float(i),
            ))
        return history

    def test_quiet_on_stable_series(self):
        walls = [0.100, 0.102, 0.099, 0.101, 0.098, 0.100, 0.103]
        assert check_history(self._history(walls)) == []

    def test_outlier_flags_latest_doubling(self):
        walls = [0.100, 0.102, 0.099, 0.101, 0.098, 0.100, 0.205]
        findings = check_history(self._history(walls))
        assert len(findings) == 1
        f = findings[0]
        assert f.kind == "outlier"
        assert (f.bench, f.test) == ("b", "t")
        assert f.latest_s == pytest.approx(0.205)
        assert "b::t" in f.format()

    def test_outlier_needs_min_points(self):
        walls = [0.1, 0.1, 0.1, 0.2]  # only 4 points
        assert check_history(self._history(walls)) == []

    def test_small_blip_below_min_relative_ignored(self):
        # 5% above median: big z on a near-zero-MAD series, but below
        # the 10% relative floor.
        walls = [0.100] * 8 + [0.105]
        assert check_history(self._history(walls)) == []

    def test_drift_flags_steady_growth(self):
        walls = [0.100 * (1.02 ** i) for i in range(14)]  # +2% each run
        findings = check_history(self._history(walls))
        assert any(f.kind == "drift" for f in findings)

    def test_drift_ignores_improvement(self):
        walls = [0.100 * (0.98 ** i) for i in range(14)]
        assert not [
            f for f in check_history(self._history(walls))
            if f.kind == "drift"
        ]

    def test_series_are_checked_independently(self):
        history = self._history(
            [0.100, 0.102, 0.099, 0.101, 0.098, 0.100, 0.205],
            bench="fast", test="slowed",
        )
        for row in self._history(
            [0.050, 0.051, 0.049, 0.050, 0.052, 0.051, 0.050],
            bench="lint", test="healthy",
        ).rows:
            history.add(row)
        findings = check_history(history)
        assert [(f.bench, f.test) for f in findings] == [("fast", "slowed")]

    def test_format_helpers(self):
        f = Finding(
            bench="b", test="t", machine="m1", kind="outlier",
            message="latest 0.2s vs median 0.1s",
            latest_s=0.2, baseline_s=0.1,
        )
        assert "[outlier]" in format_findings([f])
        assert "no variations" in format_findings([])
        history = self._history([0.1, 0.11, 0.1])
        report = format_report(history)
        assert "b::t" in report


class TestPerfCLI:
    def test_check_regression_fixture_exits_1_and_names_bench(self, capsys):
        rc = main([
            "perf", "check", "--history", str(FIXTURES / "regression.jsonl"),
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "fastpath::test_fused_analyze_speedup" in out
        # The healthy series sharing the file is not blamed.
        assert "lint::test_lint_throughput" not in out

    def test_check_steady_fixture_green(self, capsys):
        assert main([
            "perf", "check", "--history", str(FIXTURES / "steady.jsonl"),
        ]) == 0
        assert "no variations detected" in capsys.readouterr().out

    def test_check_json_output(self, tmp_path, capsys):
        out_path = tmp_path / "findings.json"
        rc = main([
            "perf", "check", "--history", str(FIXTURES / "regression.jsonl"),
            "--json", str(out_path),
        ])
        capsys.readouterr()
        assert rc == 1
        findings = json.loads(out_path.read_text())
        assert findings[0]["bench"] == "fastpath"
        assert findings[0]["kind"] == "outlier"

    def test_record_then_check_then_report(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_demo.json"
        bench.write_text(json.dumps({
            "bench": "demo", "git_sha": "cafe123",
            "results": {"test_a": {"wall_s": 0.5}},
        }))
        history = tmp_path / "history.jsonl"
        assert main([
            "perf", "record", str(bench), "--history", str(history),
            "--machine", "ci", "--timestamp", "1.0",
        ]) == 0
        assert main(["perf", "check", "--history", str(history)]) == 0
        assert main(["perf", "report", "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "demo::test_a" in out

    def test_record_without_inputs_exit_2(self, tmp_path, capsys):
        assert main([
            "perf", "record", "--history", str(tmp_path / "h.jsonl"),
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_record_missing_bench_exit_2(self, tmp_path, capsys):
        assert main([
            "perf", "record", str(tmp_path / "nope.json"),
            "--history", str(tmp_path / "h.jsonl"),
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_history_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("garbage\n")
        assert main(["perf", "check", "--history", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_real_bench_records_stay_green(self, tmp_path, capsys):
        """The committed BENCH_*.json files produce a quiet history."""
        repo = Path(__file__).parent.parent
        benches = sorted(repo.glob("BENCH_*.json"))
        assert benches, "repo-root benchmark records missing"
        history = tmp_path / "history.jsonl"
        assert main([
            "perf", "record", *map(str, benches),
            "--history", str(history), "--machine", "ci",
            "--timestamp", "1.0",
        ]) == 0
        assert main(["perf", "check", "--history", str(history)]) == 0
        capsys.readouterr()
