"""Fuzz/robustness tests for the trace readers.

A reader fed corrupted bytes must raise a controlled exception (our
format errors, zlib/JSON/value errors), never crash the interpreter,
hang, or silently return garbage that later explodes in analysis.
"""

import json
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.paper import figure3_trace
from repro.trace import read_binary, read_jsonl, write_binary, write_jsonl
from repro.trace.binio import BinaryFormatError
from repro.trace.reader import TraceFormatError

ACCEPTABLE = (
    TraceFormatError,
    BinaryFormatError,
    ValueError,
    KeyError,
    TypeError,
    EOFError,
    IndexError,
    zlib.error,
    json.JSONDecodeError,
    UnicodeDecodeError,
    struct_error := __import__("struct").error,
    OverflowError,
    MemoryError,
)


@pytest.fixture(scope="module")
def binary_bytes(tmp_path_factory):
    path = tmp_path_factory.mktemp("fuzz") / "t.rpt"
    write_binary(figure3_trace(), path)
    return path.read_bytes()


@pytest.fixture(scope="module")
def jsonl_text(tmp_path_factory):
    path = tmp_path_factory.mktemp("fuzz") / "t.jsonl"
    write_jsonl(figure3_trace(), path)
    return path.read_text()


class TestBinaryFuzz:
    @given(st.integers(min_value=0, max_value=4095), st.integers(0, 255))
    @settings(max_examples=120, deadline=None)
    def test_single_byte_flip(self, binary_bytes, tmp_path_factory, pos, value):
        data = bytearray(binary_bytes)
        pos = pos % len(data)
        if data[pos] == value:
            value = (value + 1) % 256
        data[pos] = value
        path = tmp_path_factory.mktemp("flip") / "c.rpt"
        path.write_bytes(bytes(data))
        try:
            trace = read_binary(path)
        except ACCEPTABLE:
            return
        # If it still parses, the result must be structurally sound or
        # the validator must catch it; no crash either way.
        from repro.trace import validate_trace

        validate_trace(trace)

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_truncation(self, binary_bytes, tmp_path_factory, cut):
        path = tmp_path_factory.mktemp("trunc") / "c.rpt"
        path.write_bytes(binary_bytes[: max(len(binary_bytes) - cut, 0)])
        with pytest.raises(ACCEPTABLE):
            read_binary(path)

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_random_garbage(self, tmp_path_factory, blob):
        path = tmp_path_factory.mktemp("junk") / "c.rpt"
        path.write_bytes(blob)
        with pytest.raises(ACCEPTABLE):
            read_binary(path)


class TestJsonlFuzz:
    @given(st.integers(min_value=0, max_value=10_000), st.characters())
    @settings(max_examples=80, deadline=None)
    def test_single_char_substitution(self, jsonl_text, tmp_path_factory,
                                      pos, char):
        text = list(jsonl_text)
        pos = pos % len(text)
        text[pos] = char
        path = tmp_path_factory.mktemp("sub") / "c.jsonl"
        path.write_text("".join(text))
        try:
            trace = read_jsonl(path)
        except ACCEPTABLE:
            return
        from repro.trace import validate_trace

        validate_trace(trace)

    @given(st.lists(st.text(max_size=40), max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_random_lines(self, tmp_path_factory, lines):
        path = tmp_path_factory.mktemp("lines") / "c.jsonl"
        path.write_text("\n".join(lines))
        with pytest.raises(ACCEPTABLE):
            read_jsonl(path)

    def test_dropped_lines_detected_or_benign(self, jsonl_text, tmp_path):
        lines = jsonl_text.splitlines()
        for drop in range(1, min(len(lines), 6)):
            subset = lines[:drop] + lines[drop + 1 :]
            path = tmp_path / f"drop{drop}.jsonl"
            path.write_text("\n".join(subset))
            try:
                trace = read_jsonl(path)
            except ACCEPTABLE:
                continue
            from repro.trace import validate_trace

            validate_trace(trace)


def _rewrite_rpt_header(data: bytes, mutate) -> bytes:
    """Decode an .rpt header JSON, apply ``mutate``, re-encode.

    Re-derives the (version-dependent) payload start so the rewritten
    header's payload-relative offsets still point at the same bytes.
    """
    import struct

    from repro.trace.binio import payload_start

    assert data[:4] == b"RPTR"
    version, hlen = struct.unpack_from("<HI", data, 4)
    header = json.loads(data[10 : 10 + hlen])
    mutate(header)
    hb = json.dumps(header).encode("utf-8")
    pad = b"\0" * (payload_start(len(hb), version) - 10 - len(hb))
    return (
        data[:4]
        + struct.pack("<HI", version, len(hb))
        + hb
        + pad
        + data[payload_start(hlen, version) :]
    )


class TestTraceIndexStrictness:
    """The chunked reader must reject malformed per-rank chunk tables.

    These are the failure modes a sharded worker would otherwise hit
    deep inside replay: a manifest entry pointing past the end of a
    truncated file, two entries claiming the same payload bytes, or a
    rank appearing twice.  All must surface as ``TraceFormatError`` at
    index or load time, never as silent garbage.
    """

    from repro.trace.reader import TraceIndex  # class attr for brevity

    def _write(self, tmp_path, data: bytes):
        path = tmp_path / "c.rpt"
        path.write_bytes(data)
        return path

    def test_truncated_chunk_rejected(self, binary_bytes, tmp_path):
        def mutate(header):
            col = header["locations"][0]["columns"]["time"]
            col["length"] = col["length"] + 10_000_000

        path = self._write(tmp_path, _rewrite_rpt_header(binary_bytes, mutate))
        with pytest.raises(TraceFormatError, match="truncated"):
            self.TraceIndex(path)

    def test_truncated_payload_rejected(self, binary_bytes, tmp_path):
        # Manifest intact, payload bytes cut off at the end.
        path = self._write(tmp_path, binary_bytes[:-17])
        with pytest.raises(TraceFormatError, match="truncated"):
            self.TraceIndex(path)

    def test_overlapping_chunks_rejected(self, binary_bytes, tmp_path):
        def mutate(header):
            locs = header["locations"]
            a = locs[0]["columns"]["time"]
            b = locs[1]["columns"]["time"]
            b["offset"] = a["offset"]  # second rank claims first's bytes

        path = self._write(tmp_path, _rewrite_rpt_header(binary_bytes, mutate))
        with pytest.raises(TraceFormatError, match="overlap"):
            self.TraceIndex(path)

    def test_duplicate_location_rejected(self, binary_bytes, tmp_path):
        def mutate(header):
            header["locations"].append(header["locations"][0])

        path = self._write(tmp_path, _rewrite_rpt_header(binary_bytes, mutate))
        with pytest.raises(TraceFormatError, match="duplicate"):
            self.TraceIndex(path)

    def test_negative_offset_rejected(self, binary_bytes, tmp_path):
        def mutate(header):
            header["locations"][0]["columns"]["time"]["offset"] = -4

        path = self._write(tmp_path, _rewrite_rpt_header(binary_bytes, mutate))
        with pytest.raises(TraceFormatError, match="invalid chunk extent"):
            self.TraceIndex(path)

    def test_missing_column_rejected(self, binary_bytes, tmp_path):
        def mutate(header):
            del header["locations"][0]["columns"]["kind"]

        path = self._write(tmp_path, _rewrite_rpt_header(binary_bytes, mutate))
        with pytest.raises(TraceFormatError, match="missing column"):
            self.TraceIndex(path)

    def test_wrong_event_count_rejected(self, binary_bytes, tmp_path):
        def mutate(header):
            header["locations"][0]["n"] += 1

        path = self._write(tmp_path, _rewrite_rpt_header(binary_bytes, mutate))
        # v2 raw columns are caught at index time (blob length must be
        # n * itemsize); zlib columns only at load/decompress time.
        with pytest.raises(TraceFormatError, match="expected|inconsistent"):
            index = self.TraceIndex(path)
            index.load([index.ranks[0]])

    def test_duplicate_jsonl_events_record_rejected(self, jsonl_text, tmp_path):
        lines = jsonl_text.splitlines()
        events_lines = [
            ln for ln in lines if '"record": "events"' in ln
            or '"record":"events"' in ln
        ]
        assert events_lines, "fixture trace has no events records"
        path = tmp_path / "dup.jsonl"
        path.write_text("\n".join([*lines, events_lines[0]]))
        from repro.trace.reader import TraceIndex

        with pytest.raises(TraceFormatError, match="duplicate"):
            TraceIndex(path)

    def test_requesting_unknown_rank_rejected(self, binary_bytes, tmp_path):
        path = self._write(tmp_path, binary_bytes)
        index = self.TraceIndex(path)
        with pytest.raises(TraceFormatError, match="unknown"):
            index.load([max(index.ranks) + 1])

    @given(st.integers(min_value=0, max_value=4095), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_lazy_load_equals_eager_under_fuzz(
        self, binary_bytes, tmp_path_factory, pos, value
    ):
        """Whenever both paths accept a (possibly corrupted) file, the
        lazy per-rank loader must produce the same trace as the eager
        reader — corruption must never desynchronise them silently."""
        from repro.trace.reader import TraceIndex

        data = bytearray(binary_bytes)
        pos = pos % len(data)
        if data[pos] == value:
            value = (value + 1) % 256
        data[pos] = value
        path = tmp_path_factory.mktemp("lazyflip") / "c.rpt"
        path.write_bytes(bytes(data))
        try:
            eager = read_binary(path)
        except ACCEPTABLE:
            eager = None
        try:
            lazy = TraceIndex(path).load()
        except ACCEPTABLE:
            lazy = None
        if eager is None or lazy is None:
            return  # at least one rejected; nothing to compare
        assert sorted(lazy.ranks) == sorted(eager.ranks)
        for rank in eager.ranks:
            assert lazy.events_of(rank) == eager.events_of(rank)
