"""Fuzz/robustness tests for the trace readers.

A reader fed corrupted bytes must raise a controlled exception (our
format errors, zlib/JSON/value errors), never crash the interpreter,
hang, or silently return garbage that later explodes in analysis.
"""

import json
import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.paper import figure3_trace
from repro.trace import read_binary, read_jsonl, write_binary, write_jsonl
from repro.trace.binio import BinaryFormatError
from repro.trace.reader import TraceFormatError

ACCEPTABLE = (
    TraceFormatError,
    BinaryFormatError,
    ValueError,
    KeyError,
    TypeError,
    EOFError,
    IndexError,
    zlib.error,
    json.JSONDecodeError,
    UnicodeDecodeError,
    struct_error := __import__("struct").error,
    OverflowError,
    MemoryError,
)


@pytest.fixture(scope="module")
def binary_bytes(tmp_path_factory):
    path = tmp_path_factory.mktemp("fuzz") / "t.rpt"
    write_binary(figure3_trace(), path)
    return path.read_bytes()


@pytest.fixture(scope="module")
def jsonl_text(tmp_path_factory):
    path = tmp_path_factory.mktemp("fuzz") / "t.jsonl"
    write_jsonl(figure3_trace(), path)
    return path.read_text()


class TestBinaryFuzz:
    @given(st.integers(min_value=0, max_value=4095), st.integers(0, 255))
    @settings(max_examples=120, deadline=None)
    def test_single_byte_flip(self, binary_bytes, tmp_path_factory, pos, value):
        data = bytearray(binary_bytes)
        pos = pos % len(data)
        if data[pos] == value:
            value = (value + 1) % 256
        data[pos] = value
        path = tmp_path_factory.mktemp("flip") / "c.rpt"
        path.write_bytes(bytes(data))
        try:
            trace = read_binary(path)
        except ACCEPTABLE:
            return
        # If it still parses, the result must be structurally sound or
        # the validator must catch it; no crash either way.
        from repro.trace import validate_trace

        validate_trace(trace)

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_truncation(self, binary_bytes, tmp_path_factory, cut):
        path = tmp_path_factory.mktemp("trunc") / "c.rpt"
        path.write_bytes(binary_bytes[: max(len(binary_bytes) - cut, 0)])
        with pytest.raises(ACCEPTABLE):
            read_binary(path)

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_random_garbage(self, tmp_path_factory, blob):
        path = tmp_path_factory.mktemp("junk") / "c.rpt"
        path.write_bytes(blob)
        with pytest.raises(ACCEPTABLE):
            read_binary(path)


class TestJsonlFuzz:
    @given(st.integers(min_value=0, max_value=10_000), st.characters())
    @settings(max_examples=80, deadline=None)
    def test_single_char_substitution(self, jsonl_text, tmp_path_factory,
                                      pos, char):
        text = list(jsonl_text)
        pos = pos % len(text)
        text[pos] = char
        path = tmp_path_factory.mktemp("sub") / "c.jsonl"
        path.write_text("".join(text))
        try:
            trace = read_jsonl(path)
        except ACCEPTABLE:
            return
        from repro.trace import validate_trace

        validate_trace(trace)

    @given(st.lists(st.text(max_size=40), max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_random_lines(self, tmp_path_factory, lines):
        path = tmp_path_factory.mktemp("lines") / "c.jsonl"
        path.write_text("\n".join(lines))
        with pytest.raises(ACCEPTABLE):
            read_jsonl(path)

    def test_dropped_lines_detected_or_benign(self, jsonl_text, tmp_path):
        lines = jsonl_text.splitlines()
        for drop in range(1, min(len(lines), 6)):
            subset = lines[:drop] + lines[drop + 1 :]
            path = tmp_path / f"drop{drop}.jsonl"
            path.write_text("\n".join(subset))
            try:
                trace = read_jsonl(path)
            except ACCEPTABLE:
                continue
            from repro.trace import validate_trace

            validate_trace(trace)
