"""Tests for communication statistics and CSV/JSON exports."""

import csv
import json

import numpy as np
import pytest

from repro.core import analyze_trace, communication_matrix
from repro.profiles import (
    write_analysis_json,
    write_profile_csv,
    write_rank_summary_csv,
    write_segments_csv,
)
from repro.sim import ops
from repro.sim.engine import simulate
from repro.sim.network import NetworkModel
from repro.sim.workloads.synthetic import SyntheticConfig, generate


@pytest.fixture(scope="module")
def star_trace():
    """Star topology: rank 0 sends to everyone, sizes grow with peer."""

    def program(rank, size):
        yield ops.Enter("main")
        if rank == 0:
            for peer in range(1, size):
                yield ops.Send(peer, size=1000 * peer, tag=peer)
        else:
            yield ops.Recv(0, tag=rank)
        yield ops.Barrier()
        yield ops.Leave("main")

    return simulate(5, program, network=NetworkModel(latency=1e-4)).trace


class TestCommMatrix:
    def test_counts_and_bytes(self, star_trace):
        cm = communication_matrix(star_trace)
        assert cm.num_messages == 4
        assert cm.total_bytes == 1000 * (1 + 2 + 3 + 4)
        assert cm.counts[0, 1] == 1
        assert cm.bytes[0, 4] == 4000
        assert cm.counts[1, 0] == 0

    def test_sent_received(self, star_trace):
        cm = communication_matrix(star_trace)
        assert cm.sent_by(0) == (4, 10000)
        assert cm.received_by(3) == (1, 3000)
        assert cm.sent_by(2) == (0, 0)

    def test_top_pairs(self, star_trace):
        cm = communication_matrix(star_trace)
        assert cm.top_pairs(1, by="bytes") == [(0, 4, 4000.0)]
        assert cm.top_pairs(2, by="count")[0][0] == 0
        with pytest.raises(ValueError):
            cm.top_pairs(by="vibes")

    def test_transfer_times_positive(self, star_trace):
        cm = communication_matrix(star_trace)
        mean = cm.mean_transfer_time()
        assert mean[0, 1] > 0
        assert np.isnan(mean[1, 0])

    def test_unmatched_times_skipped(self, star_trace):
        cm = communication_matrix(star_trace, matched_times=False)
        assert cm.total_transfer_time.sum() == 0.0

    def test_imbalance(self, star_trace):
        cm = communication_matrix(star_trace)
        assert cm.imbalance() == pytest.approx(5.0)  # only rank 0 sends

    def test_ring_is_balanced(self):
        trace = generate(SyntheticConfig(ranks=6, iterations=4))
        cm = communication_matrix(trace, matched_times=False)
        assert cm.imbalance() == pytest.approx(1.0)

    def test_render(self, star_trace, tmp_path):
        from repro.viz import render_comm_matrix_png

        cm = communication_matrix(star_trace)
        for metric in ("bytes", "count", "time"):
            path = tmp_path / f"cm_{metric}.png"
            render_comm_matrix_png(cm, path, metric=metric)
            assert path.exists()
        with pytest.raises(ValueError):
            render_comm_matrix_png(cm, metric="vibes")


class TestExports:
    @pytest.fixture(scope="class")
    def analysis(self):
        return analyze_trace(
            generate(SyntheticConfig(ranks=4, iterations=5,
                                     slow_ranks={2: 1.5}, seed=6))
        )

    def test_profile_csv(self, analysis, tmp_path):
        path = tmp_path / "profile.csv"
        n = write_profile_csv(analysis.profile, path)
        rows = list(csv.DictReader(path.open()))
        assert len(rows) == n
        names = {r["function"] for r in rows}
        assert {"main", "iteration", "work"} <= names
        work = next(r for r in rows if r["function"] == "work")
        assert int(work["count"]) == 20
        assert float(work["inclusive_sum"]) > 0

    def test_rank_summary_csv(self, analysis, tmp_path):
        path = tmp_path / "ranks.csv"
        assert write_rank_summary_csv(analysis, path) == 4
        rows = list(csv.DictReader(path.open()))
        sos = [float(r["total_sos"]) for r in rows]
        assert np.argmax(sos) == 2  # the slow rank

    def test_segments_csv(self, analysis, tmp_path):
        path = tmp_path / "segments.csv"
        n = write_segments_csv(analysis, path)
        assert n == 4 * 5
        rows = list(csv.DictReader(path.open()))
        for row in rows:
            duration = float(row["duration"])
            sync = float(row["sync_time"])
            sos = float(row["sos"])
            assert sos == pytest.approx(duration - sync)

    def test_analysis_json(self, analysis, tmp_path):
        path = tmp_path / "analysis.json"
        write_analysis_json(analysis, path)
        payload = json.loads(path.read_text())
        assert payload["dominant"]["name"] == "iteration"
