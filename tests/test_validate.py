"""Tests for structural trace validation."""

import pytest

from repro.trace import Location, Trace, validate_trace
from repro.trace.events import EventKind, EventList, EventListBuilder


def stream(rows):
    """rows: (time, kind, ref) triples."""
    b = EventListBuilder()
    for t, kind, ref in rows:
        b.append(t, kind, ref=ref)
    return b.freeze()


def single_process_trace(events, regions=("main",), metrics=()):
    trace = Trace(name="t")
    for name in regions:
        trace.regions.register(name)
    for name in metrics:
        trace.metrics.register(name)
    trace.add_process(Location(0, "P0"), events)
    return trace


def codes(report):
    return {issue.code for issue in report.issues}


class TestValidateTrace:
    def test_valid_trace(self, fig2):
        assert validate_trace(fig2).ok

    def test_no_processes(self):
        report = validate_trace(Trace(name="empty"))
        assert codes(report) == {"no-processes"}

    def test_empty_stream_flagged_and_suppressed(self):
        trace = single_process_trace(EventList.empty())
        assert codes(validate_trace(trace)) == {"empty-stream"}
        assert validate_trace(trace, allow_empty_streams=True).ok

    def test_unmatched_leave(self):
        trace = single_process_trace(stream([(0.0, EventKind.LEAVE, 0)]))
        assert "unmatched-leave" in codes(validate_trace(trace))

    def test_mismatched_leave(self):
        trace = single_process_trace(
            stream([(0.0, EventKind.ENTER, 0), (1.0, EventKind.LEAVE, 1)]),
            regions=("a", "b"),
        )
        assert "mismatched-leave" in codes(validate_trace(trace))

    def test_unclosed_regions(self):
        trace = single_process_trace(stream([(0.0, EventKind.ENTER, 0)]))
        assert "unclosed-regions" in codes(validate_trace(trace))

    def test_bad_region_ref(self):
        trace = single_process_trace(
            stream([(0.0, EventKind.ENTER, 7), (1.0, EventKind.LEAVE, 7)])
        )
        assert "bad-region-ref" in codes(validate_trace(trace))

    def test_bad_metric_ref(self):
        b = EventListBuilder()
        b.metric(0.0, metric=5, value=1.0)
        trace = single_process_trace(b.freeze())
        report = validate_trace(trace, allow_empty_streams=True)
        assert "bad-metric-ref" in codes(report)

    def test_bad_partner(self):
        b = EventListBuilder()
        b.send(0.0, partner=9)
        trace = single_process_trace(b.freeze())
        assert "bad-partner" in codes(validate_trace(trace))

    def test_raise_if_invalid(self):
        trace = single_process_trace(stream([(0.0, EventKind.ENTER, 0)]))
        report = validate_trace(trace)
        with pytest.raises(ValueError, match="invalid trace"):
            report.raise_if_invalid()

    def test_report_bool_and_len(self, fig1):
        report = validate_trace(fig1)
        assert bool(report) and len(report) == 0
        report.raise_if_invalid()  # no-op on valid traces

    def test_issue_str_includes_rank(self):
        trace = single_process_trace(stream([(0.0, EventKind.LEAVE, 0)]))
        text = str(validate_trace(trace).issues[0])
        assert "rank 0" in text

    def test_time_order_detected(self):
        # The builder cannot create unsorted streams, so corrupt a valid
        # one in place (the arrays are merely flagged read-only).
        good = stream([(0.0, EventKind.ENTER, 0), (1.0, EventKind.LEAVE, 0)])
        good.time.setflags(write=True)
        good.time[:] = [1.0, 0.5]
        trace = single_process_trace(good)
        assert "time-order" in codes(validate_trace(trace))
