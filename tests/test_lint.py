"""Tests for the tracelint static-analysis pass.

Covers: each built-in rule firing on a minimal broken trace and
staying silent on a well-formed one, diagnostic determinism across
shard counts, SARIF output shape, config handling, the legacy
``validate_trace`` shim, pre-flight wiring, and hypothesis-driven
mutation robustness (lint never crashes on broken input and flags
every mutation class).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lint import (
    Finding,
    LintConfig,
    LintError,
    LintReport,
    Severity,
    all_rules,
    get_rule,
    lint_path,
    lint_trace,
    register_rule,
    sarif_dict,
    validate_config,
)
from repro.lint.registry import _REGISTRY
from repro.trace import Location, Trace, validate_trace, write_jsonl
from repro.trace.builder import TraceBuilder
from repro.trace.definitions import Paradigm
from repro.trace.events import EventKind, EventList, EventListBuilder


def stream(rows):
    """rows: (time, kind, ref) triples."""
    b = EventListBuilder()
    for t, kind, ref in rows:
        b.append(t, kind, ref=ref)
    return b.freeze()


def trace_of(streams, regions=("main",), paradigms=None, name="t"):
    trace = Trace(name=name)
    for rname in regions:
        trace.regions.register(
            rname, paradigm=(paradigms or {}).get(rname, Paradigm.USER)
        )
    for rank, ev in streams.items():
        trace.add_process(Location(rank, f"P{rank}"), ev)
    return trace


def unsorted_stream():
    ev = stream([(0.0, EventKind.ENTER, 0), (1.0, EventKind.LEAVE, 0)])
    ev.time.setflags(write=True)
    ev.time[:] = [1.0, 0.5]
    ev.time.setflags(write=False)
    return ev


def balanced_rows(count, region=0, t0=0.0):
    rows = []
    for i in range(count):
        rows += [
            (t0 + i, EventKind.ENTER, region),
            (t0 + i + 0.5, EventKind.LEAVE, region),
        ]
    return rows


def codes(report: LintReport) -> set[str]:
    return {d.code for d in report.diagnostics}


def healthy_trace(ranks=2, iterations=8):
    """A trace that passes every rule (enough invocations, no messages)."""
    tb = TraceBuilder(name="healthy")
    tb.region("main")
    tb.region("iter")
    for rank in range(ranks):
        p = tb.process(rank)
        p.enter(0.0, "main")
        for i in range(iterations):
            p.call(float(i + 1), i + 1.75, "iter")
        p.leave(iterations + 2.0)
    return tb.freeze()


class TestRegistry:
    def test_all_rules_sorted_and_unique(self):
        rules = all_rules()
        assert [r.code for r in rules] == sorted({r.code for r in rules})
        assert len(rules) >= 12

    def test_rule_metadata(self):
        rule = get_rule("TL001")
        assert rule.category == "structural"
        assert rule.scope == "rank"
        assert rule.legacy_code == "unmatched-leave"
        assert rule.short_help.endswith(".")
        assert rule.short_help in rule.full_help

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError, match="TL999"):
            get_rule("TL999")

    def test_duplicate_code_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):

            @register_rule(
                "TL001", category="x", scope="rank", severity=Severity.INFO
            )
            def dupe(view):
                yield Finding("nope")

    def test_bad_code_and_scope_rejected(self):
        with pytest.raises(ValueError, match="TL123"):
            register_rule(
                "X1", category="x", scope="rank", severity=Severity.INFO
            )
        with pytest.raises(ValueError, match="scope"):
            register_rule(
                "TL998", category="x", scope="galaxy", severity=Severity.INFO
            )

    def test_custom_rule_runs_and_unregisters(self):
        @register_rule(
            "TL901", category="custom", scope="rank", severity=Severity.INFO
        )
        def always(view):
            """Always fires."""
            yield Finding("hello", position=0)

        try:
            report = lint_trace(healthy_trace())
            assert "TL901" in codes(report)
        finally:
            del _REGISTRY["TL901"]


class TestStructuralRules:
    def test_clean_trace_is_clean(self):
        assert lint_trace(healthy_trace()).ok

    def test_tl001_unmatched_leave(self):
        report = lint_trace(trace_of({0: stream([(0.0, EventKind.LEAVE, 0)])}))
        diag = next(d for d in report.diagnostics if d.code == "TL001")
        assert diag.rank == 0
        assert diag.position == 0
        assert diag.time == 0.0
        assert diag.severity is Severity.ERROR

    def test_tl002_unclosed_regions(self):
        report = lint_trace(trace_of({0: stream([(0.0, EventKind.ENTER, 0)])}))
        assert "TL002" in codes(report)
        assert "TL001" not in codes(report)

    def test_tl003_mismatched_leave(self):
        report = lint_trace(
            trace_of(
                {0: stream([(0.0, EventKind.ENTER, 0), (1.0, EventKind.LEAVE, 1)])},
                regions=("a", "b"),
            )
        )
        assert "TL003" in codes(report)

    def test_tl004_time_order(self):
        report = lint_trace(trace_of({0: unsorted_stream()}))
        assert "TL004" in codes(report)
        # Pairing-dependent rules must not also fire on unsorted input.
        assert {"TL001", "TL002", "TL003"}.isdisjoint(codes(report))

    def test_tl005_duplicate_events(self):
        rows = [
            (0.0, EventKind.ENTER, 0),
            (1.0, EventKind.LEAVE, 0),
            (1.0, EventKind.LEAVE, 0),
        ]
        report = lint_trace(trace_of({0: stream(rows)}))
        assert "TL005" in codes(report)

    def test_tl006_negative_time(self):
        ev = stream([(0.0, EventKind.ENTER, 0), (1.0, EventKind.LEAVE, 0)])
        ev.time.setflags(write=True)
        ev.time[:] = [-2.0, 1.0]
        ev.time.setflags(write=False)
        report = lint_trace(trace_of({0: ev}))
        assert "TL006" in codes(report)

    def test_tl007_bad_region_ref(self):
        report = lint_trace(
            trace_of({0: stream([(0.0, EventKind.ENTER, 9), (1.0, EventKind.LEAVE, 9)])})
        )
        assert "TL007" in codes(report)

    def test_tl008_bad_metric_ref(self):
        b = EventListBuilder()
        b.metric(0.0, metric=5, value=1.0)
        report = lint_trace(trace_of({0: b.freeze()}))
        assert "TL008" in codes(report)

    def test_tl009_bad_partner(self):
        b = EventListBuilder()
        b.send(0.0, partner=9)
        report = lint_trace(trace_of({0: b.freeze()}))
        assert "TL009" in codes(report)

    def test_tl009_respects_known_ranks(self):
        b = EventListBuilder()
        b.send(0.0, partner=9)
        report = lint_trace(
            trace_of({0: b.freeze()}), known_ranks=(0, 9)
        )
        assert "TL009" not in codes(report)

    def test_tl010_empty_stream_and_suppression(self):
        trace = trace_of({0: EventList.empty()})
        assert "TL010" in codes(lint_trace(trace))
        relaxed = LintConfig(allow_empty_streams=True)
        assert "TL010" not in codes(lint_trace(trace, config=relaxed))

    def test_tl011_no_processes(self):
        report = lint_trace(Trace(name="empty"))
        assert "TL011" in codes(report)
        assert report.diagnostics[0].rank == -1


class TestSemanticRules:
    def test_tl101_p2p_mismatch(self):
        b0 = EventListBuilder()
        b0.enter(0.0, 0)
        b0.send(0.5, partner=1)
        b0.leave(1.0, 0)
        report = lint_trace(
            trace_of({0: b0.freeze(), 1: stream(balanced_rows(1))})
        )
        diag = next(d for d in report.diagnostics if d.code == "TL101")
        assert "rank 0 sent 1" in diag.message

    def test_tl101_matched_messages_clean(self):
        b0 = EventListBuilder()
        b0.enter(0.0, 0)
        b0.send(0.5, partner=1)
        b0.leave(1.0, 0)
        b1 = EventListBuilder()
        b1.enter(0.0, 0)
        b1.recv(0.6, partner=0)
        b1.leave(1.0, 0)
        report = lint_trace(trace_of({0: b0.freeze(), 1: b1.freeze()}))
        assert "TL101" not in codes(report)

    def test_tl102_collective_mismatch(self):
        report = lint_trace(
            trace_of(
                {
                    0: stream(balanced_rows(2, region=1)),
                    1: stream(balanced_rows(1, region=1)),
                },
                regions=("main", "MPI_Barrier"),
                paradigms={"MPI_Barrier": Paradigm.MPI},
            )
        )
        assert "TL102" in codes(report)

    def test_tl102_even_collectives_clean(self):
        report = lint_trace(
            trace_of(
                {
                    0: stream(balanced_rows(2, region=1)),
                    1: stream(balanced_rows(2, region=1)),
                },
                regions=("main", "MPI_Barrier"),
                paradigms={"MPI_Barrier": Paradigm.MPI},
            )
        )
        assert "TL102" not in codes(report)

    def test_tl103_self_message(self):
        b = EventListBuilder()
        b.enter(0.0, 0)
        b.send(0.5, partner=0)
        b.leave(1.0, 0)
        report = lint_trace(trace_of({0: b.freeze()}))
        assert "TL103" in codes(report)

    def test_tl104_zero_duration_sync_storm(self):
        rows = []
        for i in range(10):
            rows += [(float(i), EventKind.ENTER, 1), (float(i), EventKind.LEAVE, 1)]
        report = lint_trace(
            trace_of(
                {0: stream(rows)},
                regions=("main", "MPI_Barrier"),
                paradigms={"MPI_Barrier": Paradigm.MPI},
            )
        )
        assert "TL104" in codes(report)

    def test_tl104_quiet_below_threshold(self):
        rows = []
        for i in range(10):
            rows += [
                (float(i), EventKind.ENTER, 1),
                (float(i) + 0.25, EventKind.LEAVE, 1),
            ]
        report = lint_trace(
            trace_of(
                {0: stream(rows)},
                regions=("main", "MPI_Barrier"),
                paradigms={"MPI_Barrier": Paradigm.MPI},
            )
        )
        assert "TL104" not in codes(report)


class TestPreconditionRules:
    def test_tl201_no_dominant_candidate(self):
        report = lint_trace(
            trace_of({0: stream(balanced_rows(1)), 1: stream(balanced_rows(1))})
        )
        assert "TL201" in codes(report)
        assert report.exit_code() == 2

    def test_tl201_satisfied_quiet(self):
        assert "TL201" not in codes(lint_trace(healthy_trace()))

    def test_tl203_segment_divergence(self):
        report = lint_trace(
            trace_of({0: stream(balanced_rows(4)), 1: stream(balanced_rows(5))})
        )
        assert "TL203" in codes(report)

    def test_tl204_clock_skew(self):
        report = lint_trace(
            trace_of(
                {
                    0: stream(balanced_rows(4)),
                    1: stream(balanced_rows(4)),
                    2: stream(balanced_rows(4, t0=50.0)),
                }
            )
        )
        skewed = [d for d in report.diagnostics if d.code == "TL204"]
        assert [d.rank for d in skewed] == [2]

    def test_tl204_tolerance_configurable(self):
        trace = trace_of(
            {
                0: stream(balanced_rows(4)),
                1: stream(balanced_rows(4, t0=50.0)),
            }
        )
        relaxed = LintConfig(clock_skew_tolerance=10.0)
        assert "TL204" not in codes(lint_trace(trace, config=relaxed))

    def test_workloads_lint_clean(self):
        from repro.sim.workloads import synthetic

        assert lint_trace(synthetic.generate()).ok


class TestConfig:
    def test_select_and_ignore(self):
        trace = trace_of({0: stream([(0.0, EventKind.LEAVE, 0)])})
        only_structural = lint_trace(trace, config=LintConfig(select=("TL0*",)))
        assert codes(only_structural) <= {f"TL{i:03d}" for i in range(100)}
        ignored = lint_trace(trace, config=LintConfig(ignore=("TL001", "TL201")))
        assert "TL001" not in codes(ignored)

    def test_severity_override(self):
        trace = trace_of({0: stream([(0.0, EventKind.LEAVE, 0)])})
        cfg = LintConfig(
            select=("TL001",),
            severity_overrides=(("TL001", Severity.WARNING),),
        )
        report = lint_trace(trace, config=cfg)
        assert report.max_severity is Severity.WARNING
        assert report.exit_code() == 1

    def test_from_mapping_roundtrip(self):
        cfg = LintConfig.from_mapping(
            {
                "select": ["TL0*"],
                "min_severity": "warning",
                "severity_overrides": {"TL005": "error"},
                "clock_skew_tolerance": 0.5,
            }
        )
        assert cfg.select == ("TL0*",)
        assert cfg.min_severity is Severity.WARNING
        assert cfg.severity_of("TL005", Severity.WARNING) is Severity.ERROR
        assert cfg.clock_skew_tolerance == 0.5

    def test_from_mapping_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown lint config key"):
            LintConfig.from_mapping({"bogus": 1})

    def test_report_filtered(self):
        trace = trace_of({0: stream([(0.0, EventKind.LEAVE, 0)])})
        report = lint_trace(trace)
        errors_only = report.filtered(min_severity=Severity.ERROR)
        assert all(d.severity >= Severity.ERROR for d in errors_only.diagnostics)
        none = report.filtered(ignore=("TL*",))
        assert not none.diagnostics

    def test_raise_for_errors(self):
        trace = trace_of({0: stream([(0.0, EventKind.LEAVE, 0)])})
        report = lint_trace(trace)
        with pytest.raises(LintError, match=r"TL001"):
            report.raise_for_errors()
        try:
            report.raise_for_errors()
        except LintError as err:
            assert err.report is report


class TestDeterminism:
    @pytest.fixture()
    def messy_path(self, tmp_path):
        """Multi-rank trace with warnings and errors spread over ranks."""
        trace = trace_of(
            {
                0: stream(balanced_rows(4)),
                1: stream(balanced_rows(5)),
                2: stream([(0.0, EventKind.LEAVE, 0)]),
                3: stream(balanced_rows(4, t0=80.0)),
            },
            name="messy",
        )
        path = tmp_path / "messy.jsonl"
        write_jsonl(trace, str(path))
        return str(path)

    def test_byte_identical_across_shards(self, messy_path):
        rendered = {
            shards: lint_path(messy_path, shards=shards).to_json()
            for shards in (1, 2, 3)
        }
        assert rendered[1] == rendered[2] == rendered[3]
        assert json.loads(rendered[1])["diagnostics"]

    def test_path_matches_in_memory(self, messy_path):
        from repro.trace import read_trace

        from_path = lint_path(messy_path)
        in_memory = lint_trace(read_trace(messy_path), source=messy_path)
        assert from_path.diagnostics == in_memory.diagnostics

    def test_diagnostics_sorted(self, messy_path):
        report = lint_path(messy_path, shards=3)
        keys = [d.sort_key for d in report.diagnostics]
        assert keys == sorted(keys)


class TestSarif:
    def test_sarif_required_fields(self):
        trace = trace_of({0: stream([(0.0, EventKind.LEAVE, 0)])})
        report = lint_trace(trace)
        sarif = sarif_dict(report)
        assert sarif["version"] == "2.1.0"
        assert sarif["$schema"].endswith("sarif-schema-2.1.0.json")
        run = sarif["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "tracelint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert {"TL001", "TL101", "TL201"} <= set(rule_ids)
        for descriptor in driver["rules"]:
            assert descriptor["shortDescription"]["text"]
            assert descriptor["defaultConfiguration"]["level"] in (
                "note", "warning", "error",
            )
        result = run["results"][0]
        assert result["ruleId"] in set(rule_ids)
        assert result["level"] == "error"
        assert result["message"]["text"]
        assert result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        assert driver["rules"][result["ruleIndex"]]["id"] == result["ruleId"]
        json.dumps(sarif)  # must be serialisable

    def test_sarif_levels_match_severities(self):
        trace = trace_of({0: stream(balanced_rows(4)), 1: stream(balanced_rows(5))})
        report = lint_trace(trace)
        sarif = sarif_dict(report)
        levels = {r["level"] for r in sarif["runs"][0]["results"]}
        assert "warning" in levels


class TestValidateShim:
    def test_legacy_codes_preserved(self):
        trace = trace_of({0: stream([(0.0, EventKind.LEAVE, 0)])})
        report = validate_trace(trace)
        assert {i.code for i in report.issues} == {"unmatched-leave"}

    def test_shim_excludes_warning_rules(self):
        # Duplicate events are a lint warning, not a validation failure.
        rows = [
            (0.0, EventKind.ENTER, 0),
            (1.0, EventKind.LEAVE, 0),
            (1.0, EventKind.LEAVE, 0),
        ]
        trace = trace_of({0: stream(rows)})
        report = validate_trace(trace)
        assert {i.code for i in report.issues} == {"unmatched-leave"}

    def test_issue_position_and_time(self):
        trace = trace_of({0: stream([(0.0, EventKind.ENTER, 0), (2.5, EventKind.LEAVE, 1)])},
                         regions=("a", "b"))
        issue = next(
            i for i in validate_trace(trace).issues if i.code == "mismatched-leave"
        )
        assert issue.position == 1
        assert issue.time == 2.5
        assert "@ event 1" in str(issue)
        assert "t=2.5" in str(issue)
        payload = issue.to_dict()
        assert payload["position"] == 1
        assert payload["time"] == 2.5

    def test_validate_config_selects_legacy_subset(self):
        cfg = validate_config()
        selected = set(cfg.select)
        for rule in all_rules():
            assert (rule.code in selected) == (rule.legacy_code is not None)


class TestPreflightWiring:
    def test_session_preflight_reports(self, tiny_trace):
        from repro.core.session import AnalysisSession

        report = AnalysisSession(tiny_trace).preflight()
        assert isinstance(report, LintReport)
        assert report.num_ranks == tiny_trace.num_processes

    def test_analyze_trace_lint_gate_raises(self):
        from repro.core.pipeline import analyze_trace

        trace = trace_of(
            {0: stream(balanced_rows(1)), 1: stream(balanced_rows(1))}
        )
        with pytest.raises(LintError, match="TL201"):
            analyze_trace(trace, lint=True)

    def test_analyze_trace_lint_gate_passes(self, tiny_trace):
        from repro.core.pipeline import analyze_trace

        analysis = analyze_trace(tiny_trace, lint=True)
        assert analysis.dominant_name

    def test_sharded_preflight_matches_in_memory(self, tmp_path, tiny_trace):
        from repro.core.session import AnalysisSession

        path = tmp_path / "tiny.jsonl"
        write_jsonl(tiny_trace, str(path))
        sharded = AnalysisSession(
            None, source_path=str(path), shards=2
        ).preflight()
        direct = lint_trace(tiny_trace)
        assert sharded.diagnostics == direct.diagnostics

    def test_replay_now_validates(self):
        from repro.core.session import AnalysisSession

        broken = trace_of({0: stream([(0.0, EventKind.LEAVE, 0)])})
        with pytest.raises(ValueError, match="unmatched-leave"):
            AnalysisSession(broken).replay()


class TestLintCLI:
    @pytest.fixture()
    def broken_path(self, tmp_path):
        trace = trace_of(
            {
                0: stream([(0.0, EventKind.LEAVE, 0)]),
                1: stream(balanced_rows(1)),
            },
            name="broken",
        )
        path = tmp_path / "broken.jsonl"
        write_jsonl(trace, str(path))
        return str(path)

    @pytest.fixture()
    def healthy_path(self, tmp_path):
        path = tmp_path / "healthy.jsonl"
        write_jsonl(healthy_trace(), str(path))
        return str(path)

    def test_exit_codes(self, broken_path, healthy_path, capsys):
        from repro.cli import main

        assert main(["lint", healthy_path]) == 0
        assert main(["lint", broken_path]) == 2
        capsys.readouterr()

    def test_select_and_severity_flags(self, broken_path, capsys):
        from repro.cli import main

        # Selecting a rule that cannot fire here yields a clean run.
        assert main(["lint", broken_path, "--select", "TL005"]) == 0
        capsys.readouterr()
        code = main(["lint", broken_path, "--severity", "error", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 2
        assert payload["diagnostics"]
        assert all(d["severity"] == "error" for d in payload["diagnostics"])

    def test_sarif_output_file(self, broken_path, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.sarif"
        assert main(["lint", broken_path, "--format", "sarif", "-o", str(out)]) == 2
        capsys.readouterr()
        sarif = json.loads(out.read_text())
        assert sarif["runs"][0]["tool"]["driver"]["rules"]
        assert sarif["runs"][0]["results"]

    def test_config_file(self, broken_path, tmp_path, capsys):
        from repro.cli import main

        cfg = tmp_path / "lint.json"
        cfg.write_text(json.dumps({"ignore": ["TL001", "TL201"]}))
        assert main(["lint", broken_path, "--config", str(cfg)]) == 0
        capsys.readouterr()

    def test_bad_config_rejected(self, broken_path, tmp_path, capsys):
        from repro.cli import EXIT_BAD_INPUT, main

        cfg = tmp_path / "bad.json"
        cfg.write_text("{not json")
        assert main(["lint", broken_path, "--config", str(cfg)]) == EXIT_BAD_INPUT
        assert main(["lint", str(tmp_path / "nope.jsonl")]) == EXIT_BAD_INPUT
        capsys.readouterr()

    def test_rules_listing(self, capsys):
        from repro.cli import main

        assert main(["lint", "--rules", "ignored"]) == 0
        out = capsys.readouterr().out
        assert "TL001" in out and "TL204" in out

    def test_cli_shard_determinism(self, broken_path, capsys):
        from repro.cli import main

        outputs = []
        for shards in ("1", "3"):
            main(["lint", broken_path, "--format", "json", "--shards", shards])
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_analyze_preflight_aborts(self, broken_path, capsys):
        from repro.cli import EXIT_BAD_INPUT, main

        assert main(["analyze", broken_path, "--preflight"]) == EXIT_BAD_INPUT
        captured = capsys.readouterr()
        assert "TL001" in captured.out


# -- mutation robustness ----------------------------------------------------

_MUTATIONS = ("drop_leave", "drop_enter", "corrupt_ref", "unsort",
              "negate_time", "self_partner")

#: diagnostics each mutation class must produce (any of the set)
_EXPECTED = {
    "drop_leave": {"TL001", "TL002", "TL003"},
    "drop_enter": {"TL001", "TL002", "TL003"},
    "corrupt_ref": {"TL007"},
    "unsort": {"TL004"},
    "negate_time": {"TL006"},
    "self_partner": {"TL103"},
}


def _mutate(trace: Trace, mutation: str, rng: np.random.Generator) -> Trace:
    rank = int(rng.choice(trace.ranks))
    ev = trace.events_of(rank)
    cols = {
        name: getattr(ev, name).copy()
        for name in ("time", "kind", "ref", "partner", "size", "tag", "value")
    }
    n = len(cols["time"])
    if mutation in ("drop_leave", "drop_enter"):
        want = EventKind.LEAVE if mutation == "drop_leave" else EventKind.ENTER
        candidates = np.flatnonzero(cols["kind"] == np.uint8(want))
        victim = int(rng.choice(candidates))
        cols = {name: np.delete(col, victim) for name, col in cols.items()}
    elif mutation == "corrupt_ref":
        enters = np.flatnonzero(cols["kind"] == np.uint8(EventKind.ENTER))
        cols["ref"][int(rng.choice(enters))] = 10_000
    elif mutation == "unsort":
        cols["time"][0] = cols["time"][-1] + 1.0
    elif mutation == "negate_time":
        cols["time"][0] = -abs(cols["time"][-1]) - 1.0
    elif mutation == "self_partner":
        victim = int(rng.integers(n))
        cols["kind"][victim] = np.uint8(EventKind.SEND)
        cols["partner"][victim] = rank
    mutated = Trace(name=trace.name, regions=trace.regions, metrics=trace.metrics)
    for r in trace.ranks:
        if r != rank:
            mutated.add_process(Location(r, f"P{r}"), trace.events_of(r))
            continue
        # Bypass EventList's constructor: mutations deliberately break
        # the sortedness invariant the constructor enforces.
        broken = object.__new__(EventList)
        for name, col in cols.items():
            arr = np.ascontiguousarray(col)
            arr.setflags(write=False)
            setattr(broken, name, arr)
        mutated.add_process(Location(r, f"P{r}"), broken)
    return mutated


class TestMutationRobustness:
    @settings(max_examples=60, deadline=None)
    @given(
        mutation=st.sampled_from(_MUTATIONS),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        ranks=st.integers(min_value=1, max_value=3),
        iterations=st.integers(min_value=2, max_value=6),
    )
    def test_lint_never_crashes_and_flags_mutation(
        self, mutation, seed, ranks, iterations
    ):
        rng = np.random.default_rng(seed)
        base = healthy_trace(ranks=ranks, iterations=iterations)
        mutated = _mutate(base, mutation, rng)
        report = lint_trace(mutated)  # must never raise
        assert codes(report) & _EXPECTED[mutation], (
            f"{mutation} produced {codes(report)}"
        )

    @settings(max_examples=20, deadline=None)
    @given(
        mutation=st.sampled_from(_MUTATIONS),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_mutated_traces_shim_never_crashes(self, mutation, seed):
        rng = np.random.default_rng(seed)
        mutated = _mutate(healthy_trace(ranks=2, iterations=4), mutation, rng)
        validate_trace(mutated)  # must never raise
