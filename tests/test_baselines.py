"""Tests for the four baseline analyses (paper Section II comparisons)."""

import numpy as np
import pytest

from repro.baselines import (
    analyze_profile_only,
    cluster_phases,
    extract_bursts,
    kmeans,
    search_patterns,
    select_representatives,
)
from repro.sim.workloads.synthetic import SyntheticConfig, generate


@pytest.fixture(scope="module")
def skewed_trace():
    """12 ranks; rank 7 persistently 1.8x slower."""
    return generate(
        SyntheticConfig(ranks=12, iterations=10, slow_ranks={7: 1.8}, seed=2)
    )


@pytest.fixture(scope="module")
def outlier_trace():
    """12 ranks; single slow invocation on rank 4, iteration 6."""
    return generate(
        SyntheticConfig(ranks=12, iterations=10, outliers={(4, 6): 0.12}, seed=2)
    )


class TestProfileOnly:
    def test_finds_persistent_skew(self, skewed_trace):
        result = analyze_profile_only(skewed_trace)
        assert result.flagged_ranks() == [7]

    def test_reports_top_functions(self, skewed_trace):
        result = analyze_profile_only(skewed_trace)
        assert result.top_functions[0][0] == "work"

    def test_structurally_blind_to_time(self, skewed_trace):
        result = analyze_profile_only(skewed_trace)
        assert not result.can_localize_time
        assert not result.can_localize_single_invocations

    def test_single_invocation_outlier_diluted(self, outlier_trace):
        """The aggregation argument: one 0.12s outlier in a 0.1s/rank
        run-total is below any materiality bar at rank level... but more
        importantly, profile-only can never say WHICH invocation."""
        result = analyze_profile_only(outlier_trace)
        findings = [f for f in result.findings if f.kind == "rank-imbalance"]
        # Either nothing flagged, or at most the rank — never the segment.
        assert all(f.rank == 4 for f in findings)
        assert all("no time axis" in f.detail for f in findings)

    def test_mpi_share_computed(self, skewed_trace):
        result = analyze_profile_only(skewed_trace)
        assert 0.0 <= result.mpi_share <= 1.0


class TestPatternSearch:
    def test_wait_at_collective_found(self, skewed_trace):
        result = search_patterns(skewed_trace)
        patterns = {p.pattern for p in result.instances}
        assert "wait-at-collective" in patterns

    def test_delayer_attribution(self, skewed_trace):
        result = search_patterns(skewed_trace)
        assert result.delayers()[0] == 7

    def test_computation_imbalance_names_region(self, skewed_trace):
        result = search_patterns(skewed_trace)
        imb = [p for p in result.instances if p.pattern == "computation-imbalance"]
        assert imb and imb[0].region in ("work", "iteration")
        assert 7 in imb[0].delaying_ranks

    def test_severity_ranked(self, skewed_trace):
        result = search_patterns(skewed_trace)
        severities = [p.severity for p in result.instances]
        assert severities == sorted(severities, reverse=True)

    def test_total_wait_time_positive(self, skewed_trace):
        assert search_patterns(skewed_trace).total_wait_time > 0

    def test_blocked_receiver_found(self, skewed_trace):
        result = search_patterns(skewed_trace)
        patterns = {p.pattern for p in result.instances}
        assert "blocked-receiver" in patterns

    def test_top_k_cap(self, skewed_trace):
        result = search_patterns(skewed_trace, top_k=2)
        assert len(result.instances) <= 2

    def test_trace_without_collectives(self):
        trace = generate(
            SyntheticConfig(ranks=2, iterations=3, collective="none",
                            use_halo=False)
        )
        result = search_patterns(trace)
        patterns = {p.pattern for p in result.instances}
        assert "wait-at-collective" not in patterns


class TestRepresentatives:
    def test_fine_threshold_keeps_anomaly_visible(self, skewed_trace):
        result = select_representatives(skewed_trace, similarity_threshold=0.05)
        assert result.is_visible(7)

    def test_coarse_threshold_hides_anomaly(self, skewed_trace):
        """The paper's criticism of [13]: representatives can hide
        performance problems."""
        result = select_representatives(skewed_trace, similarity_threshold=5.0)
        assert len(result.representatives) == 1
        assert not result.is_visible(7) or result.representatives == [7]

    def test_reduction_metric(self, skewed_trace):
        result = select_representatives(skewed_trace, similarity_threshold=5.0)
        assert result.reduction == pytest.approx(1 - 1 / 12)

    def test_assignment_consistency(self, skewed_trace):
        result = select_representatives(skewed_trace, similarity_threshold=0.05)
        for rank in skewed_trace.ranks:
            assert rank in result.cluster_of(rank)

    def test_identical_ranks_single_cluster(self):
        trace = generate(SyntheticConfig(ranks=6, iterations=5))
        result = select_representatives(trace, similarity_threshold=0.05)
        assert len(result.representatives) == 1

    def test_negative_threshold_rejected(self, skewed_trace):
        with pytest.raises(ValueError):
            select_representatives(skewed_trace, similarity_threshold=-1)


class TestKMeans:
    def test_separates_obvious_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 0.1, size=(50, 2))
        b = rng.normal(5, 0.1, size=(50, 2))
        pts = np.vstack([a, b])
        labels, centroids, inertia = kmeans(pts, 2, seed=1)
        assert len(set(labels[:50])) == 1
        assert len(set(labels[50:])) == 1
        assert labels[0] != labels[50]

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        pts = rng.random((100, 2))
        l1, c1, i1 = kmeans(pts, 4, seed=7)
        l2, c2, i2 = kmeans(pts, 4, seed=7)
        assert np.array_equal(l1, l2)
        assert i1 == i2

    def test_k_clamped_to_n(self):
        labels, centroids, _ = kmeans(np.asarray([[1.0], [2.0]]), 5)
        assert len(centroids) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 2)), 2)

    def test_identical_points(self):
        labels, centroids, inertia = kmeans(np.ones((10, 2)), 3, seed=0)
        assert inertia == 0.0


class TestClusterPhases:
    def test_extract_bursts_counts(self, skewed_trace):
        bursts = extract_bursts(skewed_trace)
        # Leaf USER invocations: setup + work per rank per iteration.
        names = {b.region for b in bursts}
        assert len(bursts) == 12 * (1 + 10)

    def test_burst_cycle_rate(self, skewed_trace):
        bursts = extract_bursts(skewed_trace)
        work = [b for b in bursts if b.duration > 0.005]
        assert all(b.cycle_rate > 0 for b in work)

    def test_clusters_separate_slow_rank_phases(self, skewed_trace):
        result = cluster_phases(skewed_trace, k=3, min_duration=0.005)
        labels_by_rank = {}
        for burst, label in zip(result.bursts, result.labels):
            labels_by_rank.setdefault(burst.rank, set()).add(int(label))
        # Rank 7's long bursts land in a different cluster than rank 0's.
        assert labels_by_rank[7] != labels_by_rank[0]

    def test_does_not_isolate_single_invocation(self, outlier_trace):
        """The paper's criticism of [7]: phase clustering classifies
        phase types; it reports the outlier burst only as a member of
        some cluster, without rank/time guidance."""
        result = cluster_phases(outlier_trace, k=3, min_duration=0.005)
        sizes = result.cluster_sizes()
        assert sizes.sum() == len(result.bursts)

    def test_outlier_bursts_api(self, outlier_trace):
        result = cluster_phases(outlier_trace, k=4, min_duration=0.005)
        outliers = result.outlier_bursts(max_share=0.02)
        if outliers:  # the tiny cluster, when isolated, is the planted one
            assert any(b.rank == 4 for b in outliers)

    def test_empty_trace_handled(self):
        trace = generate(SyntheticConfig(ranks=2, iterations=1))
        result = cluster_phases(trace, k=2, min_duration=99.0)
        assert result.bursts == []
        assert result.cluster_sizes().size == 0
