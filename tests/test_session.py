"""Tests for AnalysisSession, artifact caching and trace fingerprints.

The acceptance criteria of the session refactor: warm sessions produce
results array-equal to a fresh eager analysis (including after
refinement), a warm disk cache performs zero replay/profile
recomputation, and fingerprints are stable under codec round-trips.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AnalysisSession, analyze_trace
from repro.core.classify import SyncClassifier
from repro.core.session import ArtifactCache, SessionStats, _LRU
from repro.profiles import replay_trace
from repro.trace import read_trace, write_binary, write_jsonl
from repro.trace.builder import TraceBuilder
from repro.trace.definitions import Paradigm
from repro.trace.fingerprint import (
    fingerprint_definitions,
    fingerprint_events,
    fingerprint_trace,
)


@st.composite
def small_trace(draw):
    """A tiny SPMD trace with drawn per-rank compute times."""
    p = draw(st.integers(min_value=1, max_value=3))
    n = draw(st.integers(min_value=1, max_value=4))
    durations = [
        [draw(st.floats(min_value=0.01, max_value=1.0)) for _ in range(n)]
        for _ in range(p)
    ]
    tb = TraceBuilder(name="fp")
    tb.region("main")
    tb.region("iter")
    tb.region("calc")
    tb.region("MPI_Allreduce", paradigm=Paradigm.MPI)
    for rank in range(p):
        tb.process(rank).enter(0.0, "main")
    t = 0.0
    for it in range(n):
        t_next = t + max(durations[r][it] for r in range(p)) + 0.1
        for rank in range(p):
            pb = tb.process(rank)
            pb.enter(t, "iter")
            pb.call(t, t + durations[rank][it], "calc")
            pb.call(t + durations[rank][it], t_next, "MPI_Allreduce")
            pb.leave(t_next, "iter")
        t = t_next
    for rank in range(p):
        tb.process(rank).leave(t, "main")
    return tb.freeze()


def _assert_analyses_equal(a, b):
    """Array-level equivalence of two VariationAnalysis results."""
    assert a.dominant_name == b.dominant_name
    assert a.selection.level == b.selection.level
    np.testing.assert_array_equal(a.sos.matrix(), b.sos.matrix())
    np.testing.assert_array_equal(
        a.sos.per_rank_total(), b.sos.per_rank_total()
    )
    for rank in a.trace.ranks:
        sa, sb = a.segmentation[rank], b.segmentation[rank]
        np.testing.assert_array_equal(sa.t_start, sb.t_start)
        np.testing.assert_array_equal(sa.t_stop, sb.t_stop)
        ta, tb = a.profile.tables[rank], b.profile.tables[rank]
        np.testing.assert_array_equal(ta.region, tb.region)
        np.testing.assert_array_equal(ta.inclusive, tb.inclusive)
        np.testing.assert_array_equal(ta.exclusive, tb.exclusive)
    ha, _ = a.heat_matrix(bins=32)
    hb, _ = b.heat_matrix(bins=32)
    np.testing.assert_array_equal(ha, hb)
    assert a.hot_ranks() == b.hot_ranks()
    assert a.hot_segments() == b.hot_segments()
    for ra, rb in zip(a.profile.stats.rows(), b.profile.stats.rows()):
        assert ra.name == rb.name
        assert ra.count == rb.count
        np.testing.assert_allclose(ra.inclusive_sum, rb.inclusive_sum)


class TestSessionEquivalence:
    def test_memory_session_matches_eager(self, fig3):
        eager = analyze_trace(fig3)
        session = AnalysisSession(fig3)
        _assert_analyses_equal(session.analysis(), eager)

    def test_warm_disk_session_matches_eager(self, fig3, tmp_path):
        eager = analyze_trace(fig3)
        AnalysisSession(fig3, cache_dir=tmp_path / "c").analysis()
        warm = AnalysisSession(fig3, cache_dir=tmp_path / "c")
        _assert_analyses_equal(warm.analysis(), eager)

    def test_refined_matches_eager_refined(self, fig3, tmp_path):
        eager = analyze_trace(fig3)
        if len(eager.selection.candidates) < 2:
            pytest.skip("needs a second candidate")
        warm = AnalysisSession(fig3, cache_dir=tmp_path / "c")
        warm.analysis()
        _assert_analyses_equal(
            warm.analysis().refined(), eager.refined()
        )

    def test_at_function_matches_eager(self, fig3):
        eager = analyze_trace(fig3)
        name = eager.selection.candidates[-1].name
        session_result = AnalysisSession(fig3).analysis(function=name)
        _assert_analyses_equal(session_result, eager.at_function(name))

    def test_analyze_trace_links_session(self, fig3):
        analysis = analyze_trace(fig3)
        assert analysis.session is not None
        assert analysis.session.trace is fig3

    def test_analyze_trace_rejects_foreign_session(self, fig3, fig2):
        session = AnalysisSession(fig3)
        with pytest.raises(ValueError, match="different trace"):
            analyze_trace(fig2, session=session)


class TestZeroRecomputation:
    def test_refinement_reuses_replay(self, fig3):
        session = AnalysisSession(fig3)
        analysis = session.analysis()
        replayed = session.stats.total_computed("replay")
        stats_runs = session.stats.total_computed("stats")
        analysis.refined()
        analysis.at_function(analysis.selection.candidates[-1].name)
        analysis.heat_matrix(bins=64)
        assert session.stats.total_computed("replay") == replayed
        assert session.stats.total_computed("stats") == stats_runs

    def test_warm_disk_cache_zero_replay(self, fig3, tmp_path):
        cache = tmp_path / "cache"
        cold = AnalysisSession(fig3, cache_dir=cache)
        cold.analysis()
        assert cold.stats.total_computed("replay") == len(fig3.ranks)
        warm = AnalysisSession(fig3, cache_dir=cache)
        warm.analysis()
        assert warm.stats.total_computed("replay") == 0
        assert warm.stats.total_computed("stats") == 0
        assert warm.stats.total_computed("sos") == 0
        assert warm.stats.disk_hits["replay"] == len(fig3.ranks)

    def test_repeated_products_are_memory_hits(self, fig3):
        session = AnalysisSession(fig3)
        region = session.selection().region
        first = session.sos(region)
        assert session.sos(region) is first
        assert session.stats.memory_hits["sos"] >= 1

    def test_partial_artifact_loss_recomputes_only_missing(
        self, fig3, tmp_path
    ):
        cache = tmp_path / "cache"
        AnalysisSession(fig3, cache_dir=cache).replay()
        victim = AnalysisSession(fig3, cache_dir=cache)
        digest = victim.fingerprint.rank_digest(fig3.ranks[0])
        (cache / f"inv-{digest}.npz").unlink()
        tables = victim.replay()
        assert victim.stats.total_computed("replay") == 1
        assert set(tables) == set(fig3.ranks)

    def test_classifier_variants_cached_separately(self, fig3, tmp_path):
        session = AnalysisSession(fig3, cache_dir=tmp_path / "c")
        region = session.selection().region
        strict = SyncClassifier(name_patterns=("MPI_Barrier",))
        a = session.sos(region)
        b = session.sos(region, classifier=strict)
        assert a is not b
        assert session.stats.total_computed("sos") == 2


class TestFingerprint:
    def test_deterministic(self, fig3):
        assert fingerprint_trace(fig3) == fingerprint_trace(fig3)

    def test_sensitive_to_events(self, tiny_trace, fig3):
        assert (
            fingerprint_trace(tiny_trace).hexdigest
            != fingerprint_trace(fig3).hexdigest
        )

    def test_ignores_trace_name(self):
        def build(name):
            tb = TraceBuilder(name=name)
            tb.region("main")
            tb.process(0).call(0.0, 1.0, "main")
            return tb.freeze()

        # Content addressing: display name never enters the digest.
        assert fingerprint_trace(build("a")) == fingerprint_trace(build("b"))

    def test_definitions_digest_exposed(self, fig3):
        fp = fingerprint_trace(fig3)
        assert fingerprint_definitions(fig3) == fp.definitions

    def test_short_is_prefix(self, fig3):
        fp = fingerprint_trace(fig3)
        assert fp.hexdigest.startswith(fp.short())

    @given(small_trace())
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_stable(self, tmp_path_factory, trace):
        """JSONL and binary round-trips preserve the fingerprint."""
        fp = fingerprint_trace(trace)
        base = tmp_path_factory.mktemp("fp")
        jsonl = base / "t.jsonl"
        binary = base / "t.rpt"
        write_jsonl(trace, jsonl)
        write_binary(trace, binary)
        assert fingerprint_trace(read_trace(jsonl)) == fp
        assert fingerprint_trace(read_trace(binary)) == fp

    def test_per_rank_digests_match_events(self, fig3):
        fp = fingerprint_trace(fig3)
        for rank, digest in fp.per_rank:
            assert fingerprint_events(fig3.events_of(rank)) == digest


class TestParallelReplay:
    def test_parallel_equals_serial(self, fig3):
        serial = replay_trace(fig3)
        parallel = replay_trace(fig3, parallel=True)
        assert list(serial) == list(parallel)
        for rank in serial:
            np.testing.assert_array_equal(
                serial[rank].t_enter, parallel[rank].t_enter
            )
            np.testing.assert_array_equal(
                serial[rank].exclusive, parallel[rank].exclusive
            )

    def test_explicit_worker_count(self, fig3):
        tables = replay_trace(fig3, parallel=2)
        assert set(tables) == set(fig3.ranks)

    def test_invalid_worker_count(self, fig3):
        with pytest.raises(ValueError):
            replay_trace(fig3, parallel=0)

    def test_session_parallel_matches(self, fig3):
        a = AnalysisSession(fig3).analysis()
        b = AnalysisSession(fig3, parallel=True).analysis()
        np.testing.assert_array_equal(a.sos.matrix(), b.sos.matrix())


class TestArtifactCache:
    def test_store_load_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("abc-1", {"x": np.arange(5), "y": np.zeros(2)})
        loaded = cache.load("abc-1")
        np.testing.assert_array_equal(loaded["x"], np.arange(5))
        assert cache.keys() == ["abc-1"]

    def test_missing_key_is_none(self, tmp_path):
        assert ArtifactCache(tmp_path).load("nope") is None

    def test_corrupt_artifact_is_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("bad", {"x": np.arange(3)})
        (tmp_path / "bad.npz").write_bytes(b"not a zipfile")
        assert cache.load("bad") is None

    def test_invalid_key_rejected(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(ValueError):
            cache.store("../escape", {"x": np.arange(1)})

    def test_info_and_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("k1", {"x": np.arange(10)})
        cache.store("k2", {"x": np.arange(10)})
        info = cache.info()
        assert info.entries == 2
        assert info.total_bytes > 0
        assert "2 artifacts" in info.format()
        assert cache.clear() == 2
        assert cache.info().entries == 0

    def test_session_cache_info(self, fig3, tmp_path):
        session = AnalysisSession(fig3, cache_dir=tmp_path / "c")
        assert session.cache_info().entries == 0
        session.analysis()
        assert session.cache_info().entries > 0
        assert AnalysisSession(fig3).cache_info() is None


class TestLRUAndStats:
    def test_lru_evicts_oldest(self):
        lru = _LRU(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")
        lru.put("c", 3)  # evicts b (least recently used)
        assert lru.get("b") is not lru.get("a")
        assert lru.get("a") == 1
        assert lru.get("c") == 3
        assert len(lru) == 2

    def test_lru_rejects_zero_size(self):
        with pytest.raises(ValueError):
            _LRU(0)

    def test_bounded_session_memo_still_correct(self, fig3):
        session = AnalysisSession(fig3, memory_entries=2)
        analysis = session.analysis()
        refined = analysis.refined() if len(
            analysis.selection.candidates
        ) > 1 else analysis
        # Evictions may force recomputation but never wrong results.
        again = session.analysis()
        np.testing.assert_array_equal(
            analysis.sos.matrix(), again.sos.matrix()
        )
        assert refined.dominant_name

    def test_stats_describe_lists_stages(self, fig3):
        session = AnalysisSession(fig3)
        session.analysis()
        text = session.stats.describe()
        assert "replay" in text
        assert "sos" in text

    def test_fresh_stats_empty(self):
        stats = SessionStats()
        assert stats.total_computed("replay") == 0
        assert stats.describe().count("\n") == 0
