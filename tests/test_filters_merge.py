"""Tests for trace transformations: clip, filter, select, merge."""

import numpy as np
import pytest

from repro.trace import (
    clip_trace,
    filter_regions,
    merge_traces,
    select_ranks,
    validate_trace,
)
from repro.trace.builder import TraceBuilder


class TestClipTrace:
    def test_clip_preserves_wellformedness(self, fig3):
        clipped = clip_trace(fig3, 2.0, 8.0)
        assert validate_trace(clipped).ok

    def test_clip_synthesises_boundary_events(self, fig3):
        clipped = clip_trace(fig3, 2.0, 4.0)
        ev = clipped.events_of(0)
        # Stream starts with synthetic enters of main and a at t=2.
        assert ev.time[0] == 2.0
        names = [clipped.regions[int(r)].name for r in ev.ref[:2]]
        assert names == ["main", "a"]
        assert ev.time[-1] == 4.0

    def test_clip_keeps_interior_events(self, fig3):
        clipped = clip_trace(fig3, 0.0, 20.0)
        for rank in fig3.ranks:
            assert len(clipped.events_of(rank)) == len(fig3.events_of(rank))

    def test_clip_inclusive_time_matches_window(self, fig3):
        from repro.profiles import profile_trace

        clipped = clip_trace(fig3, 2.0, 8.0)
        prof = profile_trace(clipped)
        assert prof.stats.of("main").inclusive_sum == pytest.approx(6.0 * 3)

    def test_empty_window_rejected(self, fig3):
        with pytest.raises(ValueError, match="empty window"):
            clip_trace(fig3, 5.0, 4.0)

    def test_clip_name(self, fig3):
        assert "[2,4]" in clip_trace(fig3, 2.0, 4.0).name
        assert clip_trace(fig3, 2.0, 4.0, name="zoom").name == "zoom"

    def test_clip_metric_events_kept(self, tiny_trace):
        clipped = clip_trace(tiny_trace, 0.0, 8.0)
        from repro.trace.events import EventKind

        ev = clipped.events_of(0)
        assert np.count_nonzero(ev.kind == EventKind.METRIC) == 2


class TestFilterRegions:
    def test_drop_one_region(self, fig3):
        filtered = filter_regions(fig3, lambda r: r.name != "calc")
        assert validate_trace(filtered).ok
        from repro.profiles import profile_trace

        prof = profile_trace(filtered)
        assert prof.stats.of("calc").count == 0
        # The parent keeps its timing.
        assert prof.stats.of("a").count == 9

    def test_children_of_removed_region_survive(self, fig3):
        filtered = filter_regions(fig3, lambda r: r.name != "a")
        from repro.profiles import profile_trace

        prof = profile_trace(filtered)
        assert prof.stats.of("a").count == 0
        assert prof.stats.of("calc").count == 9

    def test_keep_all_is_identity(self, fig3):
        filtered = filter_regions(fig3, lambda r: True)
        for rank in fig3.ranks:
            assert filtered.events_of(rank) == fig3.events_of(rank)


class TestSelectRanks:
    def test_subset(self, fig3):
        sub = select_ranks(fig3, [0, 2])
        assert sub.ranks == [0, 2]
        assert sub.events_of(0) == fig3.events_of(0)

    def test_missing_rank(self, fig3):
        with pytest.raises(KeyError, match="not in trace"):
            select_ranks(fig3, [99])


class TestMergeTraces:
    def _half(self, ranks, names=("main", "x")):
        tb = TraceBuilder(name="part")
        for name in names:
            tb.region(name)
        for rank in ranks:
            p = tb.process(rank)
            p.enter(0.0, names[0])
            p.call(0.1, 0.2, names[1])
            p.leave(1.0, names[0])
        return tb.freeze()

    def test_merge_disjoint_ranks(self):
        merged = merge_traces([self._half([0, 1]), self._half([2, 3])])
        assert merged.ranks == [0, 1, 2, 3]
        assert validate_trace(merged).ok

    def test_definitions_unified_by_name(self):
        a = self._half([0], names=("main", "x"))
        b = self._half([1], names=("x", "main"))  # reversed id order
        merged = merge_traces([a, b])
        assert len(merged.regions) == 2
        from repro.profiles import profile_trace

        prof = profile_trace(merged)
        assert prof.stats.of("main").count == 2
        assert prof.stats.of("x").count == 2

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(ValueError, match="multiple traces"):
            merge_traces([self._half([0]), self._half([0])])

    def test_merge_nothing(self):
        with pytest.raises(ValueError, match="nothing"):
            merge_traces([])

    def test_merge_remaps_metrics(self, tiny_trace):
        tb = TraceBuilder(name="other")
        tb.metric("OTHER")
        tb.metric("CYC")
        p = tb.process(7)
        p.metric(0.0, "CYC", 5.0)
        other = tb.freeze()
        merged = merge_traces([tiny_trace, other])
        cyc = merged.metrics.id_of("CYC")
        ev = merged.events_of(7)
        assert int(ev.ref[0]) == cyc
