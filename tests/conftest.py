"""Shared fixtures: paper figure traces and scaled-down workload runs.

Expensive simulations (the three case studies at published scale) are
session-scoped so the whole suite pays for them once; unit tests use
small hand-built traces instead.
"""

from __future__ import annotations

import os

import pytest

from repro.paper import figure1_trace, figure2_trace, figure3_trace
from repro.trace.builder import TraceBuilder
from repro.trace.definitions import Paradigm

# Shared hypothesis settings profiles.  ``ci`` bounds example counts
# and disables per-example deadlines (shared runners have noisy
# clocks); ``dev`` is a fast local loop; ``thorough`` is for manual
# deep runs.  Select with HYPOTHESIS_PROFILE=<name>; per-test
# @settings(...) decorators still override profile values.
try:
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "ci",
        max_examples=25,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile("dev", max_examples=10, deadline=None)
    settings.register_profile("thorough", max_examples=400, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
except ImportError:  # pragma: no cover - hypothesis is optional
    pass


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="regenerate the golden analysis snapshots under tests/golden/ "
        "instead of comparing against them",
    )


@pytest.fixture()
def update_goldens(request):
    return request.config.getoption("--update-goldens")


@pytest.fixture()
def fig1():
    return figure1_trace()


@pytest.fixture()
def fig2():
    return figure2_trace()


@pytest.fixture()
def fig3():
    return figure3_trace()


@pytest.fixture()
def tiny_trace():
    """Two processes, two iterations with MPI waits, one metric."""
    tb = TraceBuilder(name="tiny")
    tb.region("main")
    tb.region("iter")
    tb.region("calc")
    tb.region("MPI_Barrier", paradigm=Paradigm.MPI)
    tb.metric("CYC")
    for rank, calc in ((0, 3.0), (1, 1.0)):
        p = tb.process(rank)
        p.enter(0.0, "main")
        for it in range(2):
            t0 = it * 4.0
            p.enter(t0, "iter")
            p.call(t0, t0 + calc, "calc")
            p.metric(t0 + calc, "CYC", (it + 1) * calc * 1e9)
            p.call(t0 + calc, t0 + 4.0, "MPI_Barrier")
            p.leave(t0 + 4.0, "iter")
        p.leave(8.0, "main")
    return tb.freeze()


@pytest.fixture(scope="session")
def cosmo_trace():
    """Full-scale COSMO-SPECS run (100 ranks, 60 iterations)."""
    from repro.sim.workloads import cosmo_specs

    return cosmo_specs.generate(processes=100, iterations=60)


@pytest.fixture(scope="session")
def cosmo_analysis(cosmo_trace):
    from repro.core import analyze_trace

    return analyze_trace(cosmo_trace)


@pytest.fixture(scope="session")
def fd4_result():
    """Full-scale COSMO-SPECS+FD4 run (200 ranks)."""
    from repro.sim.workloads import cosmo_specs_fd4

    return cosmo_specs_fd4.generate_result()


@pytest.fixture(scope="session")
def fd4_analysis(fd4_result):
    from repro.core import analyze_trace

    return analyze_trace(fd4_result.trace)


@pytest.fixture(scope="session")
def wrf_trace():
    """Full-scale WRF run (64 ranks, 40 iterations)."""
    from repro.sim.workloads import wrf

    return wrf.generate(processes=64, iterations=40)


@pytest.fixture(scope="session")
def wrf_analysis(wrf_trace):
    from repro.core import analyze_trace

    return analyze_trace(wrf_trace)


@pytest.fixture(scope="session")
def small_synthetic():
    """Small synthetic run with one planted slow rank and one outlier."""
    from repro.sim.workloads.synthetic import SyntheticConfig, generate

    config = SyntheticConfig(
        ranks=8,
        iterations=12,
        base_compute=0.01,
        slow_ranks={5: 1.6},
        outliers={(2, 7): 0.05},
        seed=3,
    )
    return generate(config), config
