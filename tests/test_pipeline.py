"""End-to-end tests of the analysis pipeline on synthetic workloads."""

import json

import numpy as np
import pytest

from repro.core import AnalysisConfig, analyze_trace
from repro.trace.builder import TraceBuilder


class TestAnalyzeTrace:
    def test_finds_planted_slow_rank(self, small_synthetic):
        trace, config = small_synthetic
        analysis = analyze_trace(trace)
        assert analysis.dominant_name == "iteration"
        assert 5 in analysis.hot_ranks()

    def test_finds_planted_outlier_segment(self, small_synthetic):
        trace, config = small_synthetic
        analysis = analyze_trace(trace)
        assert (2, 7) in analysis.hot_segments()

    def test_plain_durations_hide_the_slow_rank(self, small_synthetic):
        """The motivating argument for SOS (paper Section V)."""
        trace, _config = small_synthetic
        analysis = analyze_trace(trace)
        durations = analysis.sos.duration_matrix()
        sos = analysis.sos.matrix()
        # Collective sync makes plain durations nearly uniform across
        # ranks while SOS separates the slow rank clearly.
        dur_spread = np.nanmax(durations, axis=0) - np.nanmin(durations, axis=0)
        sos_spread = np.nanmax(sos, axis=0) - np.nanmin(sos, axis=0)
        assert np.median(sos_spread) > 5 * np.median(dur_spread)

    def test_refinement(self, small_synthetic):
        trace, _config = small_synthetic
        analysis = analyze_trace(trace)
        finer = analysis.refined()
        assert finer.dominant_name != analysis.dominant_name
        assert finer.segmentation.total_segments >= analysis.segmentation.total_segments

    def test_at_function(self, small_synthetic):
        trace, _config = small_synthetic
        analysis = analyze_trace(trace).at_function("work")
        assert analysis.dominant_name == "work"

    def test_validation_failure_raises(self):
        tb = TraceBuilder()
        tb.region("main")
        tb.process(0).enter(0.0, "main")
        trace = tb.freeze(check_stacks=False)
        with pytest.raises(ValueError, match="invalid trace"):
            analyze_trace(trace)

    def test_validation_can_be_disabled(self):
        # An unclosed region still replays if we skip validation... but
        # replay itself raises on unbalanced streams, which is the point:
        # validation gives the better message.
        tb = TraceBuilder()
        tb.region("main")
        tb.process(0).enter(0.0, "main")
        trace = tb.freeze(check_stacks=False)
        with pytest.raises(ValueError):
            analyze_trace(trace, AnalysisConfig(validate=False))

    def test_heat_matrix_shape(self, small_synthetic):
        trace, _config = small_synthetic
        analysis = analyze_trace(trace)
        matrix, edges = analysis.heat_matrix(bins=64)
        assert matrix.shape == (8, 64)
        assert len(edges) == 65

    def test_config_level(self, small_synthetic):
        trace, _config = small_synthetic
        analysis = analyze_trace(trace, AnalysisConfig(level=1))
        assert analysis.selection.level == 1


class TestReporting:
    def test_text_report_contents(self, small_synthetic):
        trace, _config = small_synthetic
        report = analyze_trace(trace).report()
        assert "Dominant function selection" in report
        assert "iteration" in report
        assert "hot ranks" in report
        assert "rank 5" in report

    def test_report_dict_roundtrips_json(self, small_synthetic):
        trace, _config = small_synthetic
        d = analyze_trace(trace).to_dict()
        payload = json.loads(json.dumps(d))
        assert payload["dominant"]["name"] == "iteration"
        assert payload["processes"] == 8
        assert any(h["rank"] == 5 for h in payload["hot_ranks"])
        assert isinstance(payload["segments"]["per_rank_sos_total"], list)

    def test_report_on_clean_trace(self):
        from repro.sim.workloads.synthetic import SyntheticConfig, generate

        trace = generate(SyntheticConfig(ranks=4, iterations=6))
        report = analyze_trace(trace).report()
        assert "no significant runtime imbalance" in report

    def test_trend_reported_for_growing_workload(self):
        from repro.sim.workloads.synthetic import SyntheticConfig, generate

        trace = generate(
            SyntheticConfig(ranks=4, iterations=25, trend_per_step=0.04)
        )
        analysis = analyze_trace(trace)
        assert analysis.trend.increasing
        assert analysis.duration_trend.increasing
