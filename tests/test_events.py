"""Unit tests for the event stream containers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.trace.events import (
    Event,
    EventKind,
    EventList,
    EventListBuilder,
    NO_PARTNER,
    NO_REF,
)


def make_list(n=5):
    b = EventListBuilder()
    for i in range(n):
        b.enter(float(i), region=i % 3)
    return b.freeze()


class TestEventListBuilder:
    def test_empty_freeze(self):
        ev = EventListBuilder().freeze()
        assert len(ev) == 0
        assert ev.duration == 0.0

    def test_append_and_freeze_roundtrip(self):
        b = EventListBuilder()
        b.enter(0.0, region=1)
        b.send(0.5, partner=2, size=100, tag=7)
        b.recv(1.0, partner=3, size=50, tag=8)
        b.metric(1.5, metric=0, value=42.0)
        b.leave(2.0, region=1)
        ev = b.freeze()
        assert len(ev) == 5
        assert ev[0] == Event(0.0, EventKind.ENTER, ref=1)
        assert ev[1].partner == 2 and ev[1].size == 100 and ev[1].tag == 7
        assert ev[3].value == 42.0
        assert ev[4].kind == EventKind.LEAVE

    def test_rejects_non_monotonic(self):
        b = EventListBuilder()
        b.enter(1.0, region=0)
        with pytest.raises(ValueError, match="non-monotonic"):
            b.enter(0.5, region=0)

    def test_equal_timestamps_allowed(self):
        b = EventListBuilder()
        b.enter(1.0, region=0)
        b.leave(1.0, region=0)
        assert len(b.freeze()) == 2

    def test_last_time(self):
        b = EventListBuilder()
        assert b.last_time is None
        b.enter(2.5, region=0)
        assert b.last_time == 2.5


class TestEventList:
    def test_construction_checks_lengths(self):
        with pytest.raises(ValueError, match="length"):
            EventList(
                np.zeros(2),
                np.zeros(3, dtype=np.uint8),
                np.zeros(2, dtype=np.int32),
                np.zeros(2, dtype=np.int32),
                np.zeros(2, dtype=np.int64),
                np.zeros(2, dtype=np.int32),
                np.zeros(2),
            )

    def test_construction_checks_time_order(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            EventList(
                np.asarray([1.0, 0.0]),
                np.zeros(2, dtype=np.uint8),
                np.zeros(2, dtype=np.int32),
                np.zeros(2, dtype=np.int32),
                np.zeros(2, dtype=np.int64),
                np.zeros(2, dtype=np.int32),
                np.zeros(2),
            )

    def test_from_events_checks_order(self):
        with pytest.raises(ValueError, match="non-monotonic"):
            EventList.from_events(
                [Event(1.0, EventKind.ENTER, 0), Event(0.0, EventKind.LEAVE, 0)]
            )

    def test_columns_are_readonly(self):
        ev = make_list()
        with pytest.raises(ValueError):
            ev.time[0] = 99.0

    def test_iteration_yields_events(self):
        ev = make_list(4)
        events = list(ev)
        assert len(events) == 4
        assert all(isinstance(e, Event) for e in events)
        assert [e.time for e in events] == [0.0, 1.0, 2.0, 3.0]

    def test_slicing_returns_eventlist(self):
        ev = make_list(6)
        sub = ev[2:5]
        assert isinstance(sub, EventList)
        assert len(sub) == 3
        assert sub.time[0] == 2.0

    def test_equality(self):
        assert make_list(4) == make_list(4)
        assert make_list(4) != make_list(5)
        assert make_list(1).__eq__(42) is NotImplemented

    def test_select_and_of_kind(self):
        b = EventListBuilder()
        b.enter(0.0, 0)
        b.metric(0.5, 0, 1.0)
        b.leave(1.0, 0)
        ev = b.freeze()
        metrics = ev.of_kind(EventKind.METRIC)
        assert len(metrics) == 1
        assert metrics[0].value == 1.0

    def test_time_window(self):
        ev = make_list(10)
        win = ev.time_window(2.0, 5.0)
        assert list(win.time) == [2.0, 3.0, 4.0]

    def test_time_window_empty(self):
        ev = make_list(3)
        assert len(ev.time_window(10.0, 20.0)) == 0

    def test_duration(self):
        assert make_list(5).duration == 4.0
        assert EventList.empty().duration == 0.0

    def test_defaults_sentinels(self):
        e = Event(0.0, EventKind.ENTER)
        assert e.ref == NO_REF and e.partner == NO_PARTNER

    def test_is_enter_leave(self):
        assert Event(0.0, EventKind.ENTER).is_enter()
        assert Event(0.0, EventKind.LEAVE).is_leave()
        assert not Event(0.0, EventKind.SEND).is_enter()


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=0,
        max_size=50,
    )
)
def test_builder_accepts_any_sorted_times(times):
    times = sorted(times)
    b = EventListBuilder()
    for t in times:
        b.enter(t, region=0)
    ev = b.freeze()
    assert len(ev) == len(times)
    assert np.all(np.diff(ev.time) >= 0)


@given(st.integers(min_value=0, max_value=40), st.integers(min_value=0, max_value=40))
def test_slice_then_len_consistent(n, cut):
    ev = make_list(n)
    assert len(ev[:cut]) == min(cut, n)
