"""Tests for flat statistics, call trees and the profile facade."""

import pytest

from repro.profiles import (
    build_call_tree,
    compute_statistics,
    profile_trace,
)
from repro.trace.builder import TraceBuilder
from repro.trace.definitions import Paradigm


class TestFunctionStatistics:
    def test_figure2_numbers(self, fig2):
        stats = compute_statistics(fig2)
        assert stats.of("main").inclusive_sum == 54.0
        assert stats.of("main").count == 3
        assert stats.of("a").inclusive_sum == 36.0
        assert stats.of("a").count == 9
        assert stats.of("i").count == 3

    def test_exclusive_sums_to_total(self, fig2):
        stats = compute_statistics(fig2)
        # Total exclusive time across all regions == total main inclusive.
        assert float(stats.exclusive_sum.sum()) == pytest.approx(54.0)

    def test_min_max(self, fig3):
        stats = compute_statistics(fig3)
        a = stats.of("a")
        assert a.inclusive_min == 3.0
        assert a.inclusive_max == 6.0
        assert a.inclusive_mean == pytest.approx((6 + 3 + 5) / 3)

    def test_recursion_counts_outermost_inclusive_only(self):
        tb = TraceBuilder()
        tb.region("f")
        p = tb.process(0)
        p.enter(0.0, "f")
        p.call(1.0, 2.0, "f")
        p.leave(4.0)
        stats = compute_statistics(tb.freeze())
        f = stats.of("f")
        assert f.count == 2  # every invocation counts
        assert f.inclusive_sum == 4.0  # but inclusive only outermost

    def test_rows_sorted_by_inclusive(self, fig2):
        rows = compute_statistics(fig2).rows()
        values = [r.inclusive_sum for r in rows]
        assert values == sorted(values, reverse=True)
        assert rows[0].name == "main"

    def test_top_exclusive(self, fig2):
        top = compute_statistics(fig2).top_exclusive(2)
        assert len(top) == 2
        assert top[0].name in ("a", "main")

    def test_never_invoked_region(self, fig1):
        fig1.regions.register("ghost")
        stats = compute_statistics(fig1)
        ghost = stats.of("ghost")
        assert ghost.count == 0
        assert ghost.inclusive_mean == 0.0


class TestCallTree:
    def test_figure1_structure(self, fig1):
        tree = build_call_tree(fig1)
        paths = tree.paths()
        assert ("foo",) in paths
        assert ("foo", "bar") in paths
        assert paths[("foo",)].inclusive_sum == 6.0
        assert paths[("foo", "bar")].count == 1

    def test_aggregates_across_processes(self, fig2):
        tree = build_call_tree(fig2)
        paths = tree.paths()
        assert paths[("main",)].count == 3
        assert paths[("main", "a")].count == 9
        assert paths[("main", "a", "b")].count == 6

    def test_exclusive_at_path_level(self, fig1):
        paths = build_call_tree(fig1).paths()
        assert paths[("foo",)].exclusive_sum == 4.0

    def test_format_renders_indented(self, fig1):
        text = build_call_tree(fig1).format()
        lines = text.splitlines()
        assert lines[0].startswith("foo")
        assert lines[1].startswith("  bar")

    def test_format_max_depth(self, fig2):
        text = build_call_tree(fig2).format(max_depth=0)
        assert "main" in text and "  a" not in text

    def test_walk_yields_depths(self, fig1):
        tree = build_call_tree(fig1)
        depths = [d for d, _ in tree.root.walk()]
        assert depths == [0, 1, 2]


class TestTraceProfile:
    def test_paradigm_shares(self, fig3):
        profile = profile_trace(fig3)
        shares = {s.paradigm: s.share for s in profile.paradigm_shares()}
        # MPI exclusive: it1 1+3+5, it2 1+1+1, it3 1+3+4 = 20 of 42 total.
        assert shares[Paradigm.MPI] == pytest.approx(20 / 42)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_mpi_fraction_unwindowed(self, fig3):
        profile = profile_trace(fig3)
        assert profile.mpi_fraction() == pytest.approx(20 / 42)

    def test_mpi_fraction_windowed(self, fig3):
        profile = profile_trace(fig3)
        # First iteration only: MPI = 1+3+5 = 9; calc = 5+3+1 = 9;
        # main exclusive contributes nothing in [0, 6].
        assert profile.mpi_fraction(0.0, 6.0) == pytest.approx(0.5)

    def test_mpi_fraction_empty_trace_window(self, fig1):
        profile = profile_trace(fig1)
        assert profile.mpi_fraction() == 0.0

    def test_per_rank_exclusive(self, fig3):
        profile = profile_trace(fig3)
        calc = profile.per_rank_exclusive("calc")
        assert list(calc) == [pytest.approx(11.0), pytest.approx(7.0),
                              pytest.approx(4.0)]

    def test_format_flat(self, fig2):
        text = profile_trace(fig2).format_flat(3)
        assert "main" in text
        assert "count" in text

    def test_call_tree_lazy_cached(self, fig1):
        profile = profile_trace(fig1)
        assert profile.call_tree is profile.call_tree

    def test_paradigm_share_absent(self, fig1):
        profile = profile_trace(fig1)
        assert profile.paradigm_share(Paradigm.OPENMP) == 0.0
