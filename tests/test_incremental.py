"""The incremental kernel: chunked feeds equal whole-trace analysis.

:class:`repro.core.incremental.IncrementalKernel` is the single engine
behind ``fused_bootstrap``, the sharded workers and the streaming
consumer.  These tests pin its per-rank contract directly: arbitrary
chunking of ``feed()`` calls is invisible in the products, boundary
violations fail loudly with the tracelint diagnostic, and the
``table_sink`` spill path hands every table out exactly once.
"""

import numpy as np
import pytest

from repro.core.fused import fused_bootstrap
from repro.core.incremental import IncrementalKernel
from repro.core.streaming import StreamOrderError

_TABLE_COLUMNS = ("region", "t_enter", "t_leave", "depth", "parent")


@pytest.fixture(scope="module")
def trace():
    from repro.sim.workloads.synthetic import SyntheticConfig, generate

    return generate(
        SyntheticConfig(
            ranks=5,
            iterations=6,
            base_compute=0.005,
            slow_ranks={3: 1.4},
            seed=21,
        )
    )


def _kernel(trace, **kwargs):
    return IncrementalKernel(
        trace.regions,
        trace.metrics,
        trace.num_processes,
        trace.ranks,
        trace_name=trace.name,
        **kwargs,
    )


def _assert_same_boot(got, want):
    key = lambda i: (i.rank, i.code, i.message, i.position, i.time)
    assert [key(i) for i in got.report.issues] == [
        key(i) for i in want.report.issues
    ]
    assert sorted(got.tables) == sorted(want.tables)
    for rank in want.tables:
        for col in _TABLE_COLUMNS:
            np.testing.assert_array_equal(
                getattr(got.tables[rank], col), getattr(want.tables[rank], col)
            )
        for stat, arr in want.partials[rank].items():
            np.testing.assert_array_equal(got.partials[rank][stat], arr)


class TestChunkedFeeds:
    @pytest.mark.parametrize("chunk", [1, 13, 4096])
    def test_equal_to_batch(self, trace, chunk):
        want = fused_bootstrap(trace)
        kernel = _kernel(trace)
        for rank in trace.ranks:
            events = trace.events_of(rank)
            for i in range(0, len(events), chunk):
                kernel.feed(rank, events[i : i + chunk])
            kernel.finish_rank(rank)
        _assert_same_boot(kernel.finalize(), want)

    def test_interleaved_ranks(self, trace):
        """Ranks may interleave arbitrarily (live feeds do)."""
        want = fused_bootstrap(trace)
        kernel = _kernel(trace)
        offsets = {rank: 0 for rank in trace.ranks}
        step = 11
        progressed = True
        while progressed:
            progressed = False
            for rank in trace.ranks:
                events = trace.events_of(rank)
                i = offsets[rank]
                if i < len(events):
                    kernel.feed(rank, events[i : i + step])
                    offsets[rank] = i + step
                    progressed = True
        _assert_same_boot(kernel.finalize(), want)

    def test_empty_chunks_are_noops(self, trace):
        want = fused_bootstrap(trace)
        kernel = _kernel(trace)
        for rank in trace.ranks:
            events = trace.events_of(rank)
            kernel.feed(rank, events[:0])
            kernel.feed(rank, events[: len(events) // 2])
            kernel.feed(rank, events[:0])
            kernel.feed(rank, events[len(events) // 2 :])
        _assert_same_boot(kernel.finalize(), want)

    def test_validate_false(self, trace):
        want = fused_bootstrap(trace, validate=False)
        kernel = _kernel(trace, validate=False)
        for rank in trace.ranks:
            events = trace.events_of(rank)
            for i in range(0, len(events), 7):
                kernel.feed(rank, events[i : i + 7])
        _assert_same_boot(kernel.finalize(), want)


class TestKernelContract:
    def test_out_of_order_chunk_raises(self, trace):
        kernel = _kernel(trace)
        rank = trace.ranks[0]
        events = trace.events_of(rank)
        kernel.feed(rank, events[10:20])
        with pytest.raises(StreamOrderError, match="not time-ordered") as err:
            kernel.feed(rank, events[:10])
        assert err.value.code == "TL004"

    def test_feed_after_finish_raises(self, trace):
        kernel = _kernel(trace)
        rank = trace.ranks[0]
        kernel.finish_rank(rank)
        with pytest.raises(ValueError, match="finalized"):
            kernel.feed(rank, trace.events_of(rank)[:4])

    def test_finish_is_idempotent(self, trace):
        kernel = _kernel(trace)
        rank = trace.ranks[0]
        kernel.feed(rank, trace.events_of(rank))
        kernel.finish_rank(rank)
        kernel.finish_rank(rank)
        boot = kernel.finalize()
        assert rank in boot.tables

    def test_finalize_closes_open_ranks(self, trace):
        want = fused_bootstrap(trace)
        kernel = _kernel(trace)
        for rank in trace.ranks:
            kernel.feed(rank, trace.events_of(rank))
        # finish_rank never called: finalize must close every rank.
        _assert_same_boot(kernel.finalize(), want)

    def test_extents_match_streams(self, trace):
        kernel = _kernel(trace)
        for rank in trace.ranks:
            kernel.feed(rank, trace.events_of(rank))
        kernel.finalize()
        for rank in trace.ranks:
            events = trace.events_of(rank)
            assert kernel.extents[rank] == (
                len(events),
                float(events.time[0]),
                float(events.time[-1]),
            )


class TestTableSink:
    def test_sink_receives_every_table_once(self, trace):
        want = fused_bootstrap(trace)
        sunk = {}

        def sink(rank, table):
            assert rank not in sunk
            sunk[rank] = table

        kernel = _kernel(trace, table_sink=sink)
        for rank in trace.ranks:
            kernel.feed(rank, trace.events_of(rank))
            kernel.finish_rank(rank)
        boot = kernel.finalize()
        # Sinked tables are handed out, not retained.
        assert not boot.tables
        assert sorted(sunk) == sorted(want.tables)
        for rank, table in sunk.items():
            for col in _TABLE_COLUMNS:
                np.testing.assert_array_equal(
                    getattr(table, col), getattr(want.tables[rank], col)
                )
        # Partials are always retained (they are small and the
        # phase-2 merge needs them rank-ascending).
        assert sorted(boot.partials) == sorted(want.partials)

    def test_table_ranks_subset(self, trace):
        want = fused_bootstrap(trace)
        subset = trace.ranks[::2]
        kernel = _kernel(trace, table_ranks=subset)
        for rank in trace.ranks:
            kernel.feed(rank, trace.events_of(rank))
        boot = kernel.finalize()
        assert sorted(boot.tables) == sorted(subset)
        for rank in subset:
            np.testing.assert_array_equal(
                boot.tables[rank].t_enter, want.tables[rank].t_enter
            )
        # Validation still covered all ranks.
        key = lambda i: (i.rank, i.code, i.message)
        assert [key(i) for i in boot.report.issues] == [
            key(i) for i in want.report.issues
        ]
