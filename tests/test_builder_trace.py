"""Unit tests for TraceBuilder/ProcessBuilder and the Trace container."""

import numpy as np
import pytest

from repro.trace.builder import TraceBuilder
from repro.trace.definitions import Paradigm
from repro.trace.events import EventKind


class TestProcessBuilder:
    def test_enter_leave_by_name(self):
        tb = TraceBuilder()
        tb.region("main")
        p = tb.process(0)
        p.enter(0.0, "main")
        assert p.depth == 1
        assert p.current_region == 0
        p.leave(1.0)
        assert p.depth == 0
        trace = tb.freeze()
        assert trace.num_events == 2

    def test_leave_checks_matching_region(self):
        tb = TraceBuilder()
        tb.region("a")
        tb.region("b")
        p = tb.process(0)
        p.enter(0.0, "a")
        with pytest.raises(ValueError, match="does not match"):
            p.leave(1.0, "b")

    def test_leave_on_empty_stack(self):
        tb = TraceBuilder()
        p = tb.process(0)
        with pytest.raises(ValueError, match="stack is empty"):
            p.leave(0.0)

    def test_call_rejects_negative_duration(self):
        tb = TraceBuilder()
        tb.region("f")
        p = tb.process(0)
        with pytest.raises(ValueError, match="negative duration"):
            p.call(2.0, 1.0, "f")

    def test_unclosed_region_fails_freeze(self):
        tb = TraceBuilder()
        tb.region("main")
        tb.process(0).enter(0.0, "main")
        with pytest.raises(ValueError, match="unclosed"):
            tb.freeze()

    def test_unclosed_allowed_when_unchecked(self):
        tb = TraceBuilder()
        tb.region("main")
        tb.process(0).enter(0.0, "main")
        trace = tb.freeze(check_stacks=False)
        assert trace.num_events == 1

    def test_metric_by_name_and_id(self):
        tb = TraceBuilder()
        mid = tb.metric("CYC")
        p = tb.process(0)
        p.metric(0.0, "CYC", 1.0)
        p.metric(1.0, mid, 2.0)
        ev = tb.freeze().events_of(0)
        assert np.all(ev.kind == EventKind.METRIC)
        assert list(ev.value) == [1.0, 2.0]

    def test_send_recv_events(self):
        tb = TraceBuilder()
        p = tb.process(0)
        p.send(0.0, partner=1, size=10, tag=3)
        p.recv(1.0, partner=1, size=20, tag=4)
        ev = tb.freeze().events_of(0)
        assert ev[0].kind == EventKind.SEND and ev[0].size == 10
        assert ev[1].kind == EventKind.RECV and ev[1].tag == 4

    def test_process_is_cached(self):
        tb = TraceBuilder()
        assert tb.process(0) is tb.process(0)
        assert tb.num_processes == 1


class TestTrace:
    def _trace(self):
        tb = TraceBuilder(name="t", attributes={"k": "v"})
        tb.region("main")
        tb.region("MPI_Send", paradigm=Paradigm.MPI)
        for rank in (0, 2):
            p = tb.process(rank)
            p.call(0.0 + rank, 1.0 + rank, "main")
        return tb.freeze()

    def test_ranks_sorted(self):
        assert self._trace().ranks == [0, 2]

    def test_time_extent(self):
        trace = self._trace()
        assert trace.t_min == 0.0
        assert trace.t_max == 3.0
        assert trace.duration == 3.0

    def test_num_events(self):
        assert self._trace().num_events == 4

    def test_duplicate_location_rejected(self):
        trace = self._trace()
        with pytest.raises(ValueError, match="duplicate"):
            trace.add_process(trace.process(0).location, trace.events_of(0))

    def test_mpi_region_ids(self):
        trace = self._trace()
        assert list(trace.mpi_region_ids()) == [1]

    def test_summary(self):
        s = self._trace().summary()
        assert s["processes"] == 2
        assert s["regions"] == 2

    def test_iteration(self):
        trace = self._trace()
        assert [p.rank for p in trace] == [0, 2]
        assert len(trace) == 2

    def test_empty_trace_extent(self):
        from repro.trace.trace import Trace

        t = Trace()
        assert t.t_min == 0.0 and t.t_max == 0.0
