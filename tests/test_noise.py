"""Property tests of the injection knobs in :mod:`repro.sim.noise`.

Two contracts matter for every knob the fuzzer samples:

* **Determinism** — a model's interruption is a pure function of its
  constructor arguments and the ``(rank, t_start, active)`` query.
  Scheduling order, call count and process boundaries must not leak
  in; this is what makes whole fuzz scenarios reproducible from one
  integer seed.
* **Effectiveness** — each knob actually perturbs the metric it
  claims to perturb when simulated, and leaves untargeted ranks
  untouched.  An injection that silently does nothing would turn
  fuzz scenarios into unlabelled no-ops.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import ops
from repro.sim.engine import simulate
from repro.sim.noise import (
    CompositeNoise,
    GaussianJitter,
    ImbalanceRamp,
    NoiseBursts,
    NoNoise,
    ScheduledInterruptions,
    Straggler,
)

ranks_st = st.integers(min_value=0, max_value=15)
t_st = st.floats(min_value=0.0, max_value=10.0,
                 allow_nan=False, allow_infinity=False)
active_st = st.floats(min_value=1e-6, max_value=1.0,
                      allow_nan=False, allow_infinity=False)


def _makespan(noise, ranks=4, iterations=6, compute=0.01):
    def program(rank, size):
        yield ops.Enter("main")
        for _ in range(iterations):
            yield ops.Enter("iteration")
            yield ops.Compute(compute, region="work")
            yield ops.Barrier()
            yield ops.Leave("iteration")
        yield ops.Leave("main")

    trace = simulate(size=ranks, program=program, noise=noise).trace
    return {
        rank: float(trace.events_of(rank).time[-1])
        for rank in trace.ranks
    }


class TestDeterminism:
    @given(seed=st.integers(0, 2**31), sigma=st.floats(0.0, 0.5),
           rank=ranks_st, t=t_st, active=active_st)
    @settings(max_examples=60, deadline=None)
    def test_gaussian_jitter_pure(self, seed, sigma, rank, t, active):
        a = GaussianJitter(sigma=sigma, seed=seed)
        b = GaussianJitter(sigma=sigma, seed=seed)
        first = a.interruption(rank, t, active)
        assert first == b.interruption(rank, t, active)
        # Repeated queries of the same model must not advance state.
        assert first == a.interruption(rank, t, active)
        assert first >= 0.0

    @given(rank=ranks_st, t=t_st, active=active_st,
           period=st.floats(0.01, 2.0), duration=st.floats(0.0, 0.5),
           phase=st.floats(0.0, 1.0), window=st.floats(0.001, 0.5))
    @settings(max_examples=60, deadline=None)
    def test_bursts_pure_and_bounded(self, rank, t, active, period,
                                     duration, phase, window):
        model = NoiseBursts(ranks=(rank,), period=period,
                            duration=duration, phase=phase, window=window)
        got = model.interruption(rank, t, active)
        assert got == model.interruption(rank, t, active)
        assert got in (0.0, duration)
        assert model.interruption(rank + 1, t, active) == 0.0

    @given(rank=ranks_st, t=t_st, active=active_st,
           rate=st.floats(0.01, 5.0), t_cap=st.floats(0.1, 20.0))
    @settings(max_examples=60, deadline=None)
    def test_ramp_pure_monotone_capped(self, rank, t, active, rate, t_cap):
        model = ImbalanceRamp(ranks=(rank,), rate=rate, t_cap=t_cap)
        got = model.interruption(rank, t, active)
        assert got == model.interruption(rank, t, active)
        # Later queries never yield less, and the cap bounds the ramp.
        assert model.interruption(rank, t + 1.0, active) >= got
        assert got <= rate * t_cap * active + 1e-12
        assert model.interruption(rank + 1, t, active) == 0.0

    @given(rank=ranks_st, t=t_st, active=active_st,
           factor=st.floats(1.0, 10.0))
    @settings(max_examples=60, deadline=None)
    def test_straggler_pure_proportional(self, rank, t, active, factor):
        model = Straggler(ranks=(rank,), factor=factor)
        got = model.interruption(rank, t, active)
        assert got == model.interruption(rank, t, active)
        assert got == pytest.approx((factor - 1.0) * active)
        # Time-independent: a straggler is slow at t=0 and at t=1000.
        assert model.interruption(rank, t + 1000.0, active) == got

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_simulated_traces_identical_per_seed(self, seed):
        from repro.trace.fingerprint import fingerprint_trace

        noise = CompositeNoise(models=(
            GaussianJitter(sigma=0.05, seed=seed),
            NoiseBursts(ranks=(1,), period=0.05, duration=0.01),
            Straggler(ranks=(2,), factor=1.5),
        ))
        a = fingerprint_trace(simulate(
            size=3, program=_two_iter_program, noise=noise).trace)
        b = fingerprint_trace(simulate(
            size=3, program=_two_iter_program, noise=noise).trace)
        assert a.hexdigest == b.hexdigest


def _two_iter_program(rank, size):
    yield ops.Enter("main")
    for _ in range(2):
        yield ops.Enter("iteration")
        yield ops.Compute(0.01, region="work")
        yield ops.Allreduce(size=8)
        yield ops.Leave("iteration")
    yield ops.Leave("main")


class TestEffectiveness:
    """Each knob must move the metric it targets, on the ranks it targets."""

    def test_bursts_stretch_target_rank(self):
        clean = _makespan(NoNoise())
        noisy = _makespan(NoiseBursts(
            ranks=(1,), period=0.005, duration=0.02, window=0.005
        ))
        assert noisy[1] > clean[1]

    def test_ramp_grows_over_time(self):
        model = ImbalanceRamp(ranks=(0,), rate=2.0)
        early = model.interruption(0, 0.01, 0.01)
        late = model.interruption(0, 1.0, 0.01)
        assert late > early * 10
        assert _makespan(model)[0] > _makespan(NoNoise())[0]

    def test_straggler_scales_with_factor(self):
        slow = _makespan(Straggler(ranks=(2,), factor=2.0))
        slower = _makespan(Straggler(ranks=(2,), factor=4.0))
        clean = _makespan(NoNoise())
        assert clean[2] < slow[2] < slower[2]

    def test_untargeted_compute_is_untouched(self):
        # The barrier couples finish times, so compare the isolated
        # models' raw interruption on a rank outside their target set.
        for model in (
            NoiseBursts(ranks=(1,), period=0.01, duration=0.05),
            ImbalanceRamp(ranks=(1,), rate=3.0),
            Straggler(ranks=(1,), factor=5.0),
            ScheduledInterruptions(events=((1, 0.0, 1.0, 0.5),)),
        ):
            assert model.interruption(0, 0.5, 0.1) == 0.0

    def test_jitter_sigma_zero_is_noiseless(self):
        model = GaussianJitter(sigma=0.0, seed=9)
        assert model.interruption(3, 0.25, 0.1) == 0.0

    def test_straggler_rejects_speedup(self):
        with pytest.raises(ValueError):
            Straggler(ranks=(0,), factor=0.5)

    @given(duration=st.floats(0.005, 0.1))
    @settings(max_examples=10, deadline=None)
    def test_burst_duration_reaches_the_trace(self, duration):
        # The injected delay must surface in the target rank's finish
        # time by at least one full burst duration.
        clean = _makespan(NoNoise())
        noisy = _makespan(NoiseBursts(
            ranks=(0,), period=0.004, duration=duration, window=0.004
        ))
        assert noisy[0] - clean[0] >= duration

    def test_composite_sums_members(self):
        members = (
            Straggler(ranks=(0,), factor=2.0),
            ImbalanceRamp(ranks=(0,), rate=1.0),
        )
        combined = CompositeNoise(models=members)
        t, active = 0.5, 0.02
        assert combined.interruption(0, t, active) == pytest.approx(
            sum(m.interruption(0, t, active) for m in members)
        )

    def test_counters_do_not_advance_during_interruptions(self):
        # Noise stretches wall time only: cycle counts must match the
        # clean run sample for sample.
        from repro.sim.countermodel import CounterSet
        from repro.trace.events import EventKind

        def run(noise):
            def program(rank, size):
                yield ops.Enter("main")
                yield ops.Compute(0.02, region="work")
                yield ops.Leave("main")

            return simulate(
                size=2, program=program, noise=noise,
                counters=CounterSet((CounterSet.cycles(),)),
            ).trace

        clean, noisy = run(NoNoise()), run(Straggler(ranks=(1,), factor=3.0))
        for rank in (0, 1):
            a = clean.events_of(rank)
            b = noisy.events_of(rank)
            metric = EventKind.METRIC
            np.testing.assert_array_equal(
                a.value[a.kind == metric], b.value[b.kind == metric]
            )
