"""Tests for segmentation and SOS-time computation (paper Sections IV-V)."""

import numpy as np
import pytest

from repro.core import (
    SyncClassifier,
    compute_sos,
    default_classifier,
    segment_trace,
    select_dominant,
    top_level_sync_mask,
)
from repro.paper import FIGURE3_CALC, FIGURE3_DURATIONS
from repro.profiles import replay_trace
from repro.trace.builder import TraceBuilder
from repro.trace.definitions import Paradigm, RegionRole


def analyze_fig3(fig3):
    tables = replay_trace(fig3)
    selection = select_dominant(fig3, tables=tables)
    segmentation = segment_trace(tables, selection.region)
    sos = compute_sos(fig3, segmentation, tables)
    return segmentation, sos


class TestSegmentation:
    def test_segments_per_rank(self, fig3):
        segmentation, _sos = analyze_fig3(fig3)
        assert segmentation.total_segments == 9
        assert list(segmentation.counts()) == [3, 3, 3]

    def test_segment_durations_match_paper(self, fig3):
        segmentation, _sos = analyze_fig3(fig3)
        matrix = segmentation.durations_matrix()
        for row in matrix:
            assert list(row) == list(FIGURE3_DURATIONS)

    def test_covering(self, fig3):
        segmentation, _sos = analyze_fig3(fig3)
        seg = segmentation[0]
        assert seg.covering(0.5) == 0
        assert seg.covering(7.0) == 1
        assert seg.covering(13.5) == 2
        assert seg.covering(99.0) == -1

    def test_time_extent(self, fig3):
        segmentation, _sos = analyze_fig3(fig3)
        assert segmentation.t_min == 0.0
        assert segmentation.t_max == 14.0

    def test_recursive_dominant_uses_outermost(self):
        tb = TraceBuilder()
        tb.region("f")
        p0 = tb.process(0)
        # Recursive: f calls f; only outermost spans become segments.
        p0.enter(0.0, "f")
        p0.call(1.0, 2.0, "f")
        p0.leave(3.0)
        p0.call(4.0, 5.0, "f")
        trace = tb.freeze()
        tables = replay_trace(trace)
        segmentation = segment_trace(tables, trace.regions.id_of("f"))
        assert len(segmentation[0]) == 2
        assert list(segmentation[0].duration) == [3.0, 1.0]

    def test_rank_without_invocations(self, fig3):
        tables = replay_trace(fig3)
        ghost = fig3.regions.register("ghost")
        segmentation = segment_trace(tables, ghost)
        assert segmentation.total_segments == 0
        assert segmentation.durations_matrix().size == 0


class TestSOSFigure3:
    """The exact numbers from the paper's Figure 3."""

    def test_plain_durations_hide_imbalance(self, fig3):
        _seg, sos = analyze_fig3(fig3)
        durations = sos.duration_matrix()
        # All processes show identical durations per iteration.
        assert np.allclose(durations, durations[0])

    def test_sos_reveals_imbalance(self, fig3):
        _seg, sos = analyze_fig3(fig3)
        matrix = sos.matrix()
        for it in range(3):
            assert list(matrix[:, it]) == [
                pytest.approx(FIGURE3_CALC[it][rank]) for rank in range(3)
            ]

    def test_first_iteration_paper_quote(self, fig3):
        """Paper: "the SOS-time of Process 2 shows 1 compared to a
        SOS-time of 5 for Process 0"."""
        _seg, sos = analyze_fig3(fig3)
        assert sos[2].sos[0] == pytest.approx(1.0)
        assert sos[0].sos[0] == pytest.approx(5.0)

    def test_sync_time_is_complement(self, fig3):
        _seg, sos = analyze_fig3(fig3)
        for rank in (0, 1, 2):
            np.testing.assert_allclose(
                sos[rank].sos + sos[rank].sync_time, sos[rank].duration
            )

    def test_per_rank_totals(self, fig3):
        _seg, sos = analyze_fig3(fig3)
        totals = sos.per_rank_total()
        assert list(totals) == [
            pytest.approx(sum(FIGURE3_CALC[i][r] for i in range(3)))
            for r in range(3)
        ]

    def test_flattened(self, fig3):
        _seg, sos = analyze_fig3(fig3)
        ranks, indices, values = sos.flattened()
        assert len(ranks) == 9
        assert set(ranks.tolist()) == {0, 1, 2}
        assert list(indices[:3]) == [0, 1, 2]


class TestSOSEdgeCases:
    def test_nested_sync_not_double_counted(self):
        """MPI_Wait inside a sync wrapper must be subtracted once."""
        tb = TraceBuilder()
        tb.region("iter")
        tb.region("exchange", role=RegionRole.SYNCHRONIZATION)
        tb.region("MPI_Wait", paradigm=Paradigm.MPI)
        for rank in (0, 1):
            p = tb.process(rank)
            p.enter(0.0, "iter")
            p.enter(1.0, "exchange")
            p.call(1.5, 2.5, "MPI_Wait")
            p.leave(3.0, "exchange")
            p.leave(4.0, "iter")
            p.call(4.0, 8.0, "iter")
        trace = tb.freeze()
        tables = replay_trace(trace)
        segmentation = segment_trace(tables, trace.regions.id_of("iter"))
        sos = compute_sos(trace, segmentation, tables)
        # Segment 1: duration 4, sync = exchange's 2 (not 2 + 1).
        assert sos[0].sos[0] == pytest.approx(2.0)
        assert sos[0].sync_time[0] == pytest.approx(2.0)

    def test_top_level_sync_mask(self):
        tb = TraceBuilder()
        tb.region("iter")
        tb.region("wrapper", role=RegionRole.SYNCHRONIZATION)
        tb.region("MPI_Wait", paradigm=Paradigm.MPI)
        p = tb.process(0)
        p.enter(0.0, "iter")
        p.enter(1.0, "wrapper")
        p.call(1.5, 2.0, "MPI_Wait")
        p.leave(3.0)
        p.call(3.0, 3.5, "MPI_Wait")
        p.leave(4.0)
        trace = tb.freeze()
        table = replay_trace(trace)[0]
        mask = top_level_sync_mask(table, default_classifier().mask(trace))
        regions = table.region[mask]
        names = sorted(trace.regions[int(r)].name for r in regions)
        # wrapper (top sync) and the second MPI_Wait, not the nested one.
        assert names == ["MPI_Wait", "wrapper"]

    def test_sync_outside_segments_ignored(self):
        tb = TraceBuilder()
        tb.region("iter")
        tb.region("MPI_Barrier", paradigm=Paradigm.MPI)
        p = tb.process(0)
        p.call(0.0, 1.0, "MPI_Barrier")  # before any segment
        p.call(1.0, 3.0, "iter")
        p.call(3.0, 5.0, "iter")
        p.call(5.0, 6.0, "MPI_Barrier")  # after all segments
        trace = tb.freeze()
        tables = replay_trace(trace)
        segmentation = segment_trace(tables, trace.regions.id_of("iter"))
        sos = compute_sos(trace, segmentation, tables)
        assert list(sos[0].sync_time) == [0.0, 0.0]
        assert list(sos[0].sos) == [2.0, 2.0]

    def test_custom_classifier(self, fig3):
        tables = replay_trace(fig3)
        segmentation = segment_trace(tables, fig3.regions.id_of("a"))
        # Classify nothing as sync: SOS == duration.
        none = SyncClassifier(
            sync_paradigms=(), sync_roles=(), name_patterns=()
        )
        sos = compute_sos(fig3, segmentation, tables, none)
        np.testing.assert_allclose(sos.matrix(), sos.duration_matrix())

    def test_empty_segmentation(self, fig3):
        tables = replay_trace(fig3)
        ghost = fig3.regions.register("ghost2")
        segmentation = segment_trace(tables, ghost)
        sos = compute_sos(fig3, segmentation, tables)
        assert sos.per_rank_total().tolist() == [0.0, 0.0, 0.0]

    def test_matrix_padding_with_uneven_counts(self):
        tb = TraceBuilder()
        tb.region("f")
        p0 = tb.process(0)
        p0.call(0.0, 1.0, "f")
        p0.call(1.0, 2.0, "f")
        p1 = tb.process(1)
        p1.call(0.0, 1.0, "f")
        trace = tb.freeze()
        tables = replay_trace(trace)
        segmentation = segment_trace(tables, 0)
        sos = compute_sos(trace, segmentation, tables)
        matrix = sos.matrix()
        assert matrix.shape == (2, 2)
        assert np.isnan(matrix[1, 1])
