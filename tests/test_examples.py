"""Smoke tests: every example script runs to completion.

The examples are executable documentation; breaking one silently would
defeat their purpose.  They run as subprocesses so import-time and
__main__ behaviour is exercised exactly as a user would.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 300) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize(
    "script,expected",
    [
        ("quickstart.py", "hot ranks"),
        ("custom_workload.py", "trend: increasing"),
        ("streaming_monitor.py", "post-mortem analysis agrees"),
        ("wrf_counters.py", "flagged ranks: [39]"),
    ],
)
def test_fast_examples(script, expected):
    result = run_example(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout


@pytest.mark.parametrize(
    "script,expected",
    [
        ("cosmo_specs_case_study.py", "hottest:   54"),
        ("fd4_interruption.py", "rank 20"),
    ],
)
def test_case_study_examples(script, expected):
    result = run_example(script, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout
