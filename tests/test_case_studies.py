"""E4-E6: reproduction of the paper's three case studies (Section VII).

These run the full-scale simulations (100/200/64 ranks) once per
session and assert the *shape* results the paper reports: the same
ranks light up, the same trends appear, the same refinement workflow
isolates the same root causes.
"""

import numpy as np
import pytest

from repro.core.metrics import (
    metric_sos_correlation,
    per_rank_metric_total,
    segment_metric_delta,
)
from repro.sim.countermodel import FPU_EXCEPTIONS, PAPI_TOT_CYC
from repro.sim.workloads.cosmo_specs import HOT_RANKS, PEAK_RANK
from repro.trace import validate_trace


class TestCosmoSpecs:
    """Case A: load imbalance from static decomposition (Fig 4)."""

    def test_trace_is_valid(self, cosmo_trace):
        assert validate_trace(cosmo_trace).ok

    def test_100_processes(self, cosmo_trace):
        assert cosmo_trace.num_processes == 100

    def test_dominant_function_represents_iterations(self, cosmo_analysis):
        assert cosmo_analysis.dominant_name == "timeloop_iteration"
        assert cosmo_analysis.segmentation.counts().min() == 60

    def test_mpi_fraction_increases_over_run(self, cosmo_analysis):
        """Fig 4a: "Throughout the execution, the fraction of MPI
        increases, up to a point where MPI activities are dominating
        towards the end of the run"."""
        trace = cosmo_analysis.trace
        d = trace.duration
        profile = cosmo_analysis.profile
        early = profile.mpi_fraction(0, d / 3)
        late = profile.mpi_fraction(2 * d / 3, d)
        assert late > early + 0.2
        assert late > 0.5  # dominating towards the end

    def test_plain_durations_increase_over_run(self, cosmo_analysis):
        """Paper: "we observe gradually increased durations towards the
        end of the application run"."""
        assert cosmo_analysis.duration_trend.increasing

    def test_hot_ranks_match_paper(self, cosmo_analysis):
        """Fig 4b: "only a few processes (Process 44, 45, 54, 55, 64,
        65) exhibit increases in this metric"."""
        assert set(cosmo_analysis.hot_ranks()) == set(HOT_RANKS)

    def test_peak_rank_is_54(self, cosmo_analysis):
        """Fig 4b: "Particularly Process 54 needs more time than any
        other process for its calculations"."""
        assert cosmo_analysis.hottest_rank() == PEAK_RANK
        totals = cosmo_analysis.sos.per_rank_total()
        assert int(np.argmax(totals)) == PEAK_RANK

    def test_sos_separates_what_durations_hide(self, cosmo_analysis):
        durations = cosmo_analysis.sos.duration_matrix()
        sos = cosmo_analysis.sos.matrix()
        # Relative spread across ranks, per iteration (late phase).
        late = slice(40, 60)
        dur_rel = np.nanstd(durations[:, late], axis=0) / np.nanmean(
            durations[:, late], axis=0
        )
        sos_rel = np.nanstd(sos[:, late], axis=0) / np.nanmean(
            sos[:, late], axis=0
        )
        assert np.median(sos_rel) > 3 * np.median(dur_rel)

    def test_heat_matrix_hotspot_location(self, cosmo_analysis):
        matrix, _edges = cosmo_analysis.heat_matrix(bins=128)
        # The hottest cell in the late phase belongs to rank 54.
        late = matrix[:, 96:]
        row = np.unravel_index(np.nanargmax(late), late.shape)[0]
        assert cosmo_analysis.trace.ranks[row] == PEAK_RANK


class TestCosmoSpecsFD4:
    """Case B: single OS interruption under dynamic balancing (Fig 5)."""

    def test_trace_is_valid(self, fd4_result):
        assert validate_trace(fd4_result.trace).ok

    def test_200_processes(self, fd4_result):
        assert fd4_result.trace.num_processes == 200

    def test_balancing_keeps_compute_balanced(self, fd4_result):
        imbalance = float(fd4_result.trace.attributes["mean_balanced_imbalance"])
        assert imbalance < 1.15

    def test_coarse_analysis_flags_rank_20(self, fd4_analysis):
        """Fig 5b: "The red line in the figure highlights a high
        SOS-time for Process 20"."""
        assert fd4_analysis.hot_ranks() == [20]

    def test_coarse_analysis_flags_the_iteration(self, fd4_analysis):
        hot = fd4_analysis.imbalance.hottest_segment()
        assert hot.rank == 20
        assert hot.segment_index == 18  # the interrupted iteration

    def test_fine_segmentation_isolates_single_invocation(self, fd4_analysis):
        """Fig 5c: "a single function call—red line—that runs
        significantly longer than all other invocations"."""
        fine = fd4_analysis.at_function("specs_timestep")
        hot_segments = fine.hot_segments()
        assert hot_segments[0] == (20, 18 * 4 + 2)
        # It is a *single* invocation: rank 20 appears exactly once at
        # the very top, far above everything else.
        top = fine.imbalance.hot_segments[0]
        assert top.score > 10

    def test_interrupted_invocation_has_low_cycle_rate(self, fd4_analysis):
        """Paper: "this single function call exhibits a low number of
        total assigned CPU cycles (measured with PAPI_TOT_CYC)"."""
        fine = fd4_analysis.at_function("specs_timestep")
        trace = fd4_analysis.trace
        deltas = segment_metric_delta(trace, PAPI_TOT_CYC, fine.segmentation)
        ranks = fine.sos.ranks
        row = ranks.index(20)
        durations = fine.segmentation[20].duration
        with np.errstate(invalid="ignore"):
            rates = deltas[row] / durations
        hot_idx = 18 * 4 + 2
        other = np.delete(rates, hot_idx)
        assert rates[hot_idx] < 0.5 * np.nanmedian(other)

    def test_no_other_rank_flagged(self, fd4_analysis):
        flagged = {h.rank for h in fd4_analysis.imbalance.hot_segments}
        assert flagged == {20}


class TestWRF:
    """Case C: floating-point exceptions on one rank (Fig 6)."""

    def test_trace_is_valid(self, wrf_trace):
        assert validate_trace(wrf_trace).ok

    def test_64_processes(self, wrf_trace):
        assert wrf_trace.num_processes == 64

    def test_init_phase_duration(self, wrf_trace):
        """Fig 6a: "model initialization and I/O activities that take
        about 11 seconds"."""
        from repro.profiles import profile_trace

        stats = profile_trace(wrf_trace).stats
        init = stats.of("wrf_init")
        assert init.inclusive_max == pytest.approx(11.0, rel=0.2)

    def test_mpi_fraction_about_25_percent(self, wrf_analysis):
        """Paper: "statistics for the iterations show a 25% fraction of
        MPI activities"."""
        trace = wrf_analysis.trace
        iters_start = wrf_analysis.segmentation.t_min
        fraction = wrf_analysis.profile.mpi_fraction(iters_start, trace.t_max)
        assert 0.15 <= fraction <= 0.35

    def test_rank_39_flagged(self, wrf_analysis):
        """Fig 6b: "Particularly Process 39 exhibits higher durations
        than the other processes"."""
        assert wrf_analysis.hot_ranks() == [39]

    def test_fpu_counter_peaks_on_rank_39(self, wrf_trace):
        """Fig 6c: "Process 39 exhibits an exceptional high number of
        floating-point exceptions"."""
        fpu = per_rank_metric_total(wrf_trace, FPU_EXCEPTIONS)
        assert int(np.argmax(fpu)) == 39
        others = np.delete(fpu, 39)
        assert fpu[39] > 100 * others.max()

    def test_counter_matches_sos_analysis(self, wrf_analysis):
        """Paper: "the results of the counter ... perfectly match our
        runtime variation analysis"."""
        fpu = per_rank_metric_total(wrf_analysis.trace, FPU_EXCEPTIONS)
        sos = wrf_analysis.sos.per_rank_total()
        assert metric_sos_correlation(fpu, sos) > 0.95

    def test_dominant_function(self, wrf_analysis):
        assert wrf_analysis.dominant_name == "wrf_timestep"


class TestRefinementChain:
    """The refinement workflow on the published case studies."""

    def test_cosmo_refinement_order(self, cosmo_analysis):
        """Refining steps down the candidate list toward smaller
        inclusive times (Section VII-B's knob)."""
        finer = cosmo_analysis.refined()
        assert finer.dominant_name == "specs_microphysics"
        assert (
            finer.selection.dominant.inclusive_sum
            < cosmo_analysis.selection.dominant.inclusive_sum
        )

    def test_cosmo_refined_still_finds_hot_ranks(self, cosmo_analysis):
        from repro.sim.workloads.cosmo_specs import HOT_RANKS, PEAK_RANK

        finer = cosmo_analysis.at_function("specs_bin_microphysics")
        assert finer.hottest_rank() == PEAK_RANK
        assert set(finer.hot_ranks()) == set(HOT_RANKS)

    def test_wrf_explain_names_physics(self, wrf_analysis):
        from repro.core import explain_segment

        hot_rank = wrf_analysis.hottest_rank()
        sos = wrf_analysis.sos[hot_rank].sos
        import numpy as np

        exp = explain_segment(wrf_analysis, hot_rank, int(np.argmax(sos)))
        culprit = exp.dominant_excess()
        assert culprit is not None
        assert culprit.name == "microphysics_driver"

    def test_fd4_streaming_would_have_caught_it(self, fd4_result):
        """The in-situ extension catches the published case B anomaly."""
        from repro.core.streaming import StreamingAnalyzer

        trace = fd4_result.trace
        analyzer = StreamingAnalyzer(
            trace.regions, trace.num_processes,
            dominant="timeloop_iteration",
        )
        for rank in trace.ranks:
            analyzer.feed(rank, trace.events_of(rank))
        assert any(
            a.segment.rank == 20 and a.segment.index == 18
            for a in analyzer.alerts
        )
