"""Differential tests: columnar sink vs legacy object sink vs fast path.

The vectorized emission pipeline is only allowed to exist because it is
bitwise-indistinguishable from the original per-event builder.  These
tests pin that equivalence three ways — trace fingerprints across
engines and sinks, file bytes across ``.rpt`` versions and codecs, and
error messages of the recorder protocol — plus the topology network
models feeding the congestion workload.
"""

import pytest

from repro.sim.engine import simulate, use_sink
from repro.sim.fuzz import build_trace, generate_spec
from repro.sim.network import (
    DragonflyTopology,
    FatTreeTopology,
    NetworkModel,
    TopologyNetworkModel,
    TorusTopology,
)
from repro.sim.sink import ColumnarTraceSink
from repro.sim.workloads import congestion, idle_wave, late_sender, serialization
from repro.sim.workloads.synthetic import SyntheticConfig, generate_result
from repro.trace import read_binary, write_binary
from repro.trace.builder import TraceBuilder
from repro.trace.fingerprint import fingerprint_trace


SYNTHETIC_VARIANTS = {
    "w1": SyntheticConfig(ranks=8, iterations=12),
    "outliers": SyntheticConfig(
        ranks=6, iterations=10, outliers={(2, 3): 0.05, (5, 7): 0.02}
    ),
    "slow-trend": SyntheticConfig(
        ranks=6, iterations=10, slow_ranks={1: 1.5}, trend_per_step=0.01
    ),
    "subiters": SyntheticConfig(ranks=5, iterations=8, subiters=3),
    "barrier": SyntheticConfig(ranks=6, iterations=8, collective="barrier"),
    "no-collective": SyntheticConfig(ranks=6, iterations=8, collective="none"),
    "no-halo": SyntheticConfig(ranks=6, iterations=8, use_halo=False),
    "two-ranks": SyntheticConfig(ranks=2, iterations=6),
    "one-rank": SyntheticConfig(ranks=1, iterations=6),
    "jitter": SyntheticConfig(ranks=6, iterations=10, jitter_sigma=0.001),
}


def _fingerprints(trace):
    fp = fingerprint_trace(trace)
    return fp.hexdigest, tuple(fp.rank_digest(r) for r in trace.ranks)


def _general(fn, monkeypatch):
    """Run ``fn`` with the vectorized fast path disabled."""
    monkeypatch.setenv("REPRO_SIM_NO_FASTPATH", "1")
    try:
        return fn()
    finally:
        monkeypatch.delenv("REPRO_SIM_NO_FASTPATH")


class TestSinkParity:
    @pytest.mark.parametrize("name", sorted(SYNTHETIC_VARIANTS))
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_synthetic_three_way(self, name, seed, monkeypatch):
        """fast+columnar == general+columnar == general+objects."""
        from dataclasses import replace

        config = replace(SYNTHETIC_VARIANTS[name], seed=seed)
        fast = generate_result(config)
        fast_fp = _fingerprints(fast.trace)

        general = _general(lambda: generate_result(config), monkeypatch)
        assert _fingerprints(general.trace) == fast_fp
        assert general.events == fast.events
        assert general.makespan == fast.makespan
        assert general.messages == fast.messages
        assert general.collectives == fast.collectives

        def objects():
            with use_sink("objects"):
                return generate_result(config)

        legacy = _general(objects, monkeypatch)
        assert _fingerprints(legacy.trace) == fast_fp
        assert legacy.events == fast.events

    @pytest.mark.parametrize(
        "module,kwargs",
        [
            (idle_wave, {"ranks": 12, "iterations": 10}),
            (late_sender, {"ranks": 8, "iterations": 10}),
            (serialization, {}),
            (congestion, {"ranks": 24, "iterations": 6}),
        ],
    )
    def test_phenomenon_workloads(self, module, kwargs, monkeypatch):
        fast_fp = _fingerprints(module.generate(**kwargs))
        general_fp = _fingerprints(
            _general(lambda: module.generate(**kwargs), monkeypatch)
        )
        assert general_fp == fast_fp

        def objects():
            with use_sink("objects"):
                return module.generate(**kwargs)

        assert _fingerprints(_general(objects, monkeypatch)) == fast_fp

    @pytest.mark.parametrize("seed", [0, 11, 29])
    def test_fuzz_scenarios(self, seed):
        spec = generate_spec(seed)
        columnar = build_trace(spec)
        with use_sink("objects"):
            legacy = build_trace(spec)
        assert _fingerprints(columnar) == _fingerprints(legacy)

    def test_use_sink_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            with use_sink("parquet"):
                pass


class TestDirectWrite:
    """SimResult.write streams buffers to .rpt without Trace objects."""

    @pytest.mark.parametrize("version", [1, 2])
    @pytest.mark.parametrize("codec", [None, "raw", "zlib"])
    def test_bytes_identical_to_legacy_writer(self, tmp_path, version, codec):
        if version == 1 and codec is not None:
            pytest.skip("v1 has no codecs")
        config = SyntheticConfig(ranks=6, iterations=10)
        result = generate_result(config)
        assert isinstance(result.sink, ColumnarTraceSink)

        direct = tmp_path / "direct.rpt"
        kwargs = {"version": version}
        if codec is not None:
            kwargs["codec"] = codec
        total = result.write(direct, **kwargs)
        assert total == direct.stat().st_size

        staged = tmp_path / "staged.rpt"
        write_binary(result.trace, staged, **kwargs)
        assert direct.read_bytes() == staged.read_bytes()

    def test_written_trace_round_trips(self, tmp_path):
        result = idle_wave.generate_result()
        path = tmp_path / "iw.rpt"
        result.write(path)
        loaded = read_binary(path)
        assert _fingerprints(loaded) == _fingerprints(result.trace)


class TestRecorderErrorParity:
    """ColumnarRecorder raises the exact ProcessBuilder messages."""

    def _pair(self):
        tb_obj, tb_col = TraceBuilder(), TraceBuilder()
        for tb in (tb_obj, tb_col):
            tb.region("main")
            tb.region("work")
        return tb_obj.process(0), ColumnarTraceSink(tb_col).recorder(0)

    def _messages(self, drive):
        out = []
        for rec in self._pair():
            with pytest.raises(ValueError) as err:
                drive(rec)
            out.append(str(err.value))
        assert out[0] == out[1]
        return out[0]

    def test_leave_on_empty_stack(self):
        msg = self._messages(lambda rec: rec.leave(1.0))
        assert "stack is empty" in msg

    def test_leave_mismatch(self):
        def drive(rec):
            rec.enter(0.0, "main")
            rec.leave(1.0, "work")

        msg = self._messages(drive)
        assert "does not match open region" in msg

    def test_non_monotonic_time(self):
        def drive(rec):
            rec.enter(1.0, "main")
            rec.enter(0.5, "work")

        msg = self._messages(drive)
        assert "non-monotonic" in msg

    def test_negative_call_duration(self):
        msg = self._messages(lambda rec: rec.call(2.0, 1.0, "main"))
        assert "negative duration" in msg

    def test_unclosed_regions_at_freeze(self):
        def run():
            def program(rank, size):
                from repro.sim import ops

                yield ops.Enter("main")

            return simulate(1, program).trace

        with pytest.raises(ValueError, match="unclosed regions"):
            run()
        with use_sink("objects"):
            with pytest.raises(ValueError, match="unclosed regions"):
                run()


class TestTopologies:
    def test_fat_tree_hop_counts(self):
        topo = FatTreeTopology(leaf_arity=4, spines=2)
        assert topo.route(3, 3) == ()
        assert topo.hops(0, 1) == 2  # same leaf
        assert topo.hops(0, 5) == 4  # via spine
        assert len(topo.route(0, 5)) == topo.hops(0, 5)

    def test_torus_shortest_wrap(self):
        topo = TorusTopology(dims=(4, 4))
        assert topo.hops(0, 0) == 0
        assert topo.hops(0, 3) == 1  # wrap is shorter than 3 steps
        assert topo.hops(0, 5) == 2  # one step per axis
        assert topo.diameter == 4
        assert len(topo.route(0, 5)) == 2

    def test_dragonfly_max_hops(self):
        topo = DragonflyTopology(groups=3, routers=3, hosts_per_router=2)
        ranks = 3 * 3 * 2
        for src in range(ranks):
            for dst in range(ranks):
                assert len(topo.route(src, dst)) <= topo.diameter

    def test_routes_are_deterministic(self):
        for topo in (
            FatTreeTopology(leaf_arity=4, spines=2),
            TorusTopology(dims=(3, 3)),
            DragonflyTopology(groups=2, routers=2, hosts_per_router=2),
        ):
            assert topo.route(1, 6) == topo.route(1, 6)

    def test_congestion_queues_on_shared_link(self):
        net = TopologyNetworkModel(
            topology=FatTreeTopology(leaf_arity=8, spines=2),
            link_bandwidth=1e9,
        )
        net.reset()
        first = net.eager_completion(1, 0, 64 * 1024, 0.0)
        second = net.eager_completion(2, 0, 64 * 1024, 0.0)
        # Both payloads share the root's down-link: the second queues.
        assert second > first
        # Without congestion both finish together.
        free = TopologyNetworkModel(
            topology=FatTreeTopology(leaf_arity=8, spines=2),
            link_bandwidth=1e9,
            congestion=False,
        )
        assert free.eager_completion(1, 0, 64 * 1024, 0.0) == pytest.approx(
            free.eager_completion(2, 0, 64 * 1024, 0.0)
        )

    def test_reset_restores_determinism(self):
        net = TopologyNetworkModel(
            topology=TorusTopology(dims=(4, 4)), link_bandwidth=1e9
        )
        net.reset()
        a = net.transfer_completion(0, 5, 1 << 20, 0.0)
        net.reset()
        b = net.transfer_completion(0, 5, 1 << 20, 0.0)
        assert a == b

    def test_flat_model_hooks_match_classic_formulas(self):
        net = NetworkModel()
        assert net.path_latency(0, 1) == net.latency
        assert net.eager_completion(0, 1, 4096, 2.5) == 2.5 + net.transfer_time(4096)
        assert net.transfer_completion(0, 1, 4096, 2.5) == 2.5 + 4096 / net.bandwidth

    def test_congestion_workload_deterministic(self):
        cfg = congestion.CongestionConfig(ranks=16, iterations=4)
        a = congestion.generate_result(cfg).trace
        b = congestion.generate_result(cfg).trace
        assert _fingerprints(a) == _fingerprints(b)

    def test_congestion_collapse_slower_than_flat(self):
        cfg = congestion.CongestionConfig(ranks=32, iterations=6)
        topo = congestion.generate_result(cfg).trace
        flat = congestion.generate_result(cfg, network=NetworkModel()).trace
        assert topo.duration > flat.duration


class TestObsCounters:
    @pytest.fixture
    def obs_collector(self):
        from repro import obs

        col = obs.enable()
        yield col
        obs.disable()

    def test_simulation_emits_counters(self, obs_collector):
        result = generate_result(SyntheticConfig(ranks=4, iterations=6))
        counters = obs_collector.counters()
        assert counters.get("sim.events_emitted") == result.events
        assert counters.get("sim.heap_ops") == result.sched_ops

    def test_direct_write_counts_bytes(self, tmp_path, obs_collector):
        result = generate_result(SyntheticConfig(ranks=4, iterations=6))
        total = result.write(tmp_path / "t.rpt")
        assert obs_collector.counters().get("sim.bytes_written") == total
