"""Lazy column projection: correctness and declared-column honesty.

Three contracts:

* a projected ``TraceIndex.load(..., columns=...)`` returns exactly the
  full load's arrays for the requested columns (plus ``time``), with
  loud ``ColumnNotLoadedError`` placeholders everywhere else;
* unknown column names raise up front, on both the reader and the
  ``EventList.projected`` constructor;
* every pass that advertises a minimal column set (replay's
  ``REPLAY_COLUMNS``, lint's ``lint_columns``/per-rule declarations,
  streaming's ``STREAM_COLUMNS``) actually runs — and produces
  identical output — on events projected down to that set.  The
  placeholder columns turn any undeclared access into an exception, so
  an under-declared pass fails these tests instead of silently reading
  more than it claims.
"""

import numpy as np
import pytest

from repro.core.streaming import STREAM_COLUMNS, StreamingAnalyzer
from repro.lint import all_rules, lint_trace
from repro.lint.engine import LINT_COLUMNS, lint_columns, validate_config
from repro.lint.model import LintConfig
from repro.profiles.replay import REPLAY_COLUMNS, match_invocations
from repro.trace import write_binary, write_jsonl
from repro.trace.events import ColumnNotLoadedError, EventList
from repro.trace.reader import TraceIndex


@pytest.fixture(scope="module")
def rich_trace():
    """Synthetic trace exercising messages, sync and metrics columns."""
    from repro.sim.workloads.synthetic import SyntheticConfig, generate

    return generate(SyntheticConfig(ranks=4, iterations=40, seed=9))


@pytest.fixture(
    scope="module", params=["jsonl", "v1", "v2-auto", "v2-raw"]
)
def trace_file(rich_trace, request, tmp_path_factory):
    root = tmp_path_factory.mktemp("projection")
    if request.param == "jsonl":
        path = root / "t.jsonl"
        write_jsonl(rich_trace, path)
    else:
        path = root / "t.rpt"
        if request.param == "v1":
            write_binary(rich_trace, path, version=1)
        elif request.param == "v2-auto":
            write_binary(rich_trace, path, version=2)
        else:
            write_binary(rich_trace, path, version=2, codec="raw")
    return path


class TestProjectionEqualsSlicing:
    def test_subset_equals_full_load(self, trace_file):
        full = TraceIndex(trace_file).load()
        subset = ("time", "kind", "ref")
        proj = TraceIndex(trace_file).load(None, columns=subset)
        assert proj.ranks == full.ranks
        for rank in full.ranks:
            a, b = full.events_of(rank), proj.events_of(rank)
            assert b.loaded_columns == subset
            for name in subset:
                got, want = getattr(b, name), getattr(a, name)
                assert got.dtype == want.dtype
                np.testing.assert_array_equal(got, want)

    def test_time_always_included(self, trace_file):
        proj = TraceIndex(trace_file).load(None, columns=("kind",))
        events = proj.events_of(proj.ranks[0])
        assert "time" in events.loaded_columns

    def test_unloaded_column_raises(self, trace_file):
        proj = TraceIndex(trace_file).load(None, columns=("time", "kind"))
        events = proj.events_of(proj.ranks[0])
        with pytest.raises(ColumnNotLoadedError, match="'value'"):
            events.value[0]
        with pytest.raises(ColumnNotLoadedError):
            np.asarray(events.size)

    def test_slicing_preserves_projection(self, trace_file):
        proj = TraceIndex(trace_file).load(None, columns=STREAM_COLUMNS)
        events = proj.events_of(proj.ranks[0])
        chunk = events[1:5]
        assert chunk.loaded_columns == events.loaded_columns
        np.testing.assert_array_equal(chunk.time, events.time[1:5])
        with pytest.raises(ColumnNotLoadedError):
            chunk.partner[0]


class TestUnknownColumns:
    def test_reader_rejects_unknown(self, trace_file):
        with pytest.raises(ValueError, match="unknown event column"):
            TraceIndex(trace_file).load(None, columns=("time", "bogus"))

    def test_projected_constructor_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown event column"):
            EventList.projected({"time": np.zeros(1), "bogus": np.zeros(1)})

    def test_projected_constructor_requires_time(self):
        with pytest.raises(ValueError, match="time"):
            EventList.projected({"kind": np.zeros(1, dtype=np.uint8)})


class TestDeclaredColumnSets:
    """Each pass runs, bit-identically, on exactly its declared columns."""

    def test_replay_columns_sufficient(self, rich_trace, trace_file):
        proj = TraceIndex(trace_file).load(None, columns=REPLAY_COLUMNS)
        for rank in rich_trace.ranks:
            table = match_invocations(proj.events_of(rank))
            want = match_invocations(rich_trace.events_of(rank))
            np.testing.assert_array_equal(table.t_enter, want.t_enter)
            np.testing.assert_array_equal(table.region, want.region)
            np.testing.assert_array_equal(table.depth, want.depth)

    def test_lint_columns_sufficient_full_ruleset(
        self, rich_trace, trace_file
    ):
        config = LintConfig()
        proj = TraceIndex(trace_file).load(
            None, columns=lint_columns(config)
        )
        got = lint_trace(proj, config=config)
        want = lint_trace(rich_trace, config=config)
        assert got.diagnostics == want.diagnostics

    def test_validate_subset_needs_only_baseline(self):
        # The legacy-validate rule subset reads no column beyond the
        # view baseline; TL005 (all seven columns) is not part of it.
        assert lint_columns(validate_config()) == LINT_COLUMNS

    def test_per_rule_declarations_sufficient(self, rich_trace, trace_file):
        for rule in all_rules():
            if rule.scope != "rank":
                continue
            config = LintConfig(select=(rule.code,))
            proj = TraceIndex(trace_file).load(
                None, columns=lint_columns(config)
            )
            got = lint_trace(proj, config=config)
            want = lint_trace(rich_trace, config=config)
            assert got.diagnostics == want.diagnostics, rule.code

    def test_underdeclared_pass_fails_loudly(self, trace_file):
        # Negative control for the mechanism: the full rule set
        # includes TL005 (reads all seven columns), so running it on
        # the baseline projection must raise, not silently skip.
        proj = TraceIndex(trace_file).load(None, columns=LINT_COLUMNS)
        with pytest.raises(ColumnNotLoadedError):
            lint_trace(proj, config=LintConfig())

    def test_stream_columns_sufficient(self, rich_trace, trace_file):
        proj = TraceIndex(trace_file).load(None, columns=STREAM_COLUMNS)

        def run(trace):
            analyzer = StreamingAnalyzer(
                trace.regions, trace.num_processes, dominant="iteration"
            )
            for rank in trace.ranks:
                events = trace.events_of(rank)
                for i in range(0, len(events), 128):
                    analyzer.feed(rank, events[i : i + 128])
            return {r: analyzer.sos_series(r) for r in trace.ranks}

        got, want = run(proj), run(rich_trace)
        for rank in want:
            np.testing.assert_array_equal(got[rank], want[rank])


class TestPlaceholderProtocols:
    """Unloaded-column placeholders fail data access loudly but stay
    out of the way of generic object protocols (regression: __getattr__
    answered every probe with ColumnNotLoadedError and defining __eq__
    made placeholders unhashable, breaking deepcopy/hasattr/pickling
    with misleading errors)."""

    @pytest.fixture()
    def projected_events(self):
        return EventList.projected({"time": np.array([0.0, 1.0])})

    def test_data_access_still_fails(self, projected_events):
        ref = projected_events.ref
        with pytest.raises(ColumnNotLoadedError):
            len(ref)
        with pytest.raises(ColumnNotLoadedError):
            ref == 3
        with pytest.raises(ColumnNotLoadedError):
            ref.sum()

    def test_dunder_probes_raise_attribute_error(self, projected_events):
        ref = projected_events.ref
        assert not hasattr(ref, "__deepcopy__")
        assert not hasattr(ref, "__array_interface__")
        with pytest.raises(AttributeError):
            ref.__deepcopy__

    def test_deepcopy_and_hash(self, projected_events):
        import copy

        clone = copy.deepcopy(projected_events)
        np.testing.assert_array_equal(clone.time, projected_events.time)
        with pytest.raises(ColumnNotLoadedError):
            len(clone.ref)
        assert isinstance(hash(projected_events.ref), int)
        assert {projected_events.ref: "ok"}
